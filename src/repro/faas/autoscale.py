"""Pluggable autoscaler policies for the cluster simulator.

The cluster's original scaler was one hard-coded rule: boot a container
for every queued request the booting fleet cannot yet absorb.  That rule
is the *most* cold-start-hungry point in the policy space — it pays a
boot the moment demand exceeds booked capacity and retires capacity the
moment keep-alive elapses.  Real platforms trade dollars for cold starts
differently, and the paper's init-time savings only matter under the
policy that decides *when* a cold start is paid.  This module makes that
decision pluggable:

* :class:`PerRequest` — the extracted original rule, bit-identical to
  the pre-refactor scaler (pinned by
  ``tests/faas/test_golden_regression.py``).
* :class:`TargetUtilization` — provision capacity so that in-flight
  utilization stays at or below a target fraction, holding warm spare
  slots that absorb bursts without a boot; an optional scale-to-zero
  grace keeps the fleet's last container alive longer.
* :class:`PanicWindow` — Knative-style dual-window autoscaling over a
  sliding arrival-rate estimate: a short panic window compared against
  the long stable window detects bursts, scales to the burst's demand,
  and *suspends scale-down* (keep-alive expiry) until the panic period
  ends.
* :class:`~repro.faas.forecast.Predictive` (in :mod:`repro.faas.forecast`)
  layers a feed-forward path on top of a reactive base: it learns
  per-window arrival counts through :meth:`ScalingPolicy.observe_window`
  and pre-warms containers ahead of the forecast demand.

A policy sees the fleet through an immutable :class:`FleetView` snapshot
and answers two questions: how many containers to boot for the current
demand (:meth:`ScalingPolicy.scale_out`) and when an idle container may
retire (:meth:`ScalingPolicy.idle_expiry`).  Policies are frozen
dataclasses (parameters only, hashable, safely shared across fleets);
per-fleet mutable state — the panic window's arrival history — lives in
the object returned by :meth:`ScalingPolicy.new_state`, owned by the
fleet.  Everything is deterministic: identical schedules and parameters
reproduce identical decisions, so cluster replays stay bit-reproducible.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import ClassVar

from repro.common.errors import SpecError


@dataclass(frozen=True, slots=True)
class FleetView:
    """An autoscaler policy's immutable snapshot of one fleet.

    Captured after request dispatch, so ``queued`` counts only arrivals
    that no live container could absorb.  The snapshot is only valid for
    the duration of the ``scale_out`` call it is handed to: the cluster
    reuses one view object per fleet (refreshing it in place between
    decisions) to keep the scale path allocation-free, so policies must
    not retain references across calls.

    Attributes:
        now: Virtual time of the decision (seconds).
        queued: Undispatched requests waiting in the FIFO queue.
        in_flight: Invocations currently executing on ready containers.
        live_containers: Containers not yet expired (ready or booting).
        booting_containers: Containers still paying their cold start.
        booting_slots: Free in-flight slots arriving with the boots.
        ready_slots: Free in-flight slots on ready containers.
        max_containers: The fleet's hard scale-out ceiling.
        max_concurrency: In-flight slots per container.
        keep_alive_s: The fleet's configured idle lifetime.
    """

    now: float
    queued: int
    in_flight: int
    live_containers: int
    booting_containers: int
    booting_slots: int
    ready_slots: int
    max_containers: int
    max_concurrency: int
    keep_alive_s: float

    @property
    def demand(self) -> int:
        """Outstanding work: queued plus in-flight requests."""
        return self.queued + self.in_flight


@dataclass(frozen=True, slots=True)
class WindowObservation:
    """One closed observation window of a fleet's admitted arrivals.

    Fed to :meth:`ScalingPolicy.observe_window` by the cluster when a
    policy declares an observation window (see
    :meth:`ScalingPolicy.observation_window_s`).  Windows are closed
    lazily — on the first admitted arrival that lands past the boundary
    — and every intermediate empty window is delivered too (``arrivals
    == 0``), so seasonal models stay phase-aligned across idle gaps.

    Attributes:
        index: The window's ordinal: ``int(start_s // window_s)``.
        start_s: Inclusive window start in virtual seconds.
        end_s: Exclusive window end in virtual seconds.
        arrivals: Admitted arrivals observed in ``[start_s, end_s)`` —
            shed requests never count.
    """

    index: int
    start_s: float
    end_s: float
    arrivals: int


class ScalingPolicy:
    """Decides when a fleet boots containers and when idle ones retire.

    Implementations are frozen dataclasses carrying parameters only.
    Mutable per-fleet runtime state (if any) is created by
    :meth:`new_state` and threaded back into every later call, so one
    policy instance can safely serve as the default for many fleets.
    The cluster guarantees ``scale_out`` is consulted only for admitted
    arrivals — a request shed by the bounded queue never triggers
    scale-out — and caps the answer at ``max_containers``.
    """

    name: ClassVar[str] = "abstract"

    def new_state(self):
        """Fresh per-fleet mutable state (``None`` for stateless policies)."""
        return None

    def export_state(self, state) -> object | None:
        """JSON-safe form of the per-fleet state, for checkpoints.

        Stateless policies (``new_state()`` returns ``None``) inherit
        this no-op; stateful ones must override both this and
        :meth:`restore_state` or their fleets cannot be checkpointed by
        :mod:`repro.faas.snapshot`.
        """
        if state is not None:
            raise SpecError(
                f"policy {type(self).__name__} carries state but does not "
                "implement export_state/restore_state"
            )
        return None

    def restore_state(self, data):
        """Rebuild per-fleet state from :meth:`export_state`'s output."""
        if data is not None:
            raise SpecError(
                f"policy {type(self).__name__} cannot restore state: {data!r}"
            )
        return self.new_state()

    def uses_last_of_fleet(self) -> bool:
        """Whether ``idle_expiry`` reads ``last_of_fleet`` — computing it
        is O(fleet) per expiry check, so the cluster skips it when the
        policy doesn't care."""
        return False

    def reactive_only(self) -> bool:
        """Whether the cluster may skip this policy on warm-hit arrivals.

        Return ``True`` only when *both* hold: ``scale_out`` returns 0
        whenever ``view.queued == 0`` without mutating ``state``, and
        ``observe_arrival`` is a no-op.  The cluster then serves the
        common arrival — a warm container free, nothing queued — on a
        fast path that never consults the policy; for a policy meeting
        the contract the fast path is provably behaviour-identical
        (pinned for :class:`PerRequest` by the golden regression).
        Policies holding warm headroom or traffic estimates must return
        ``False`` (the default).
        """
        return False

    def fast_path_tier(self) -> int:
        """How much of the warm-hit arrival path this policy may skip.

        The cluster serves the overwhelmingly common replay arrival — a
        warm container free, nothing queued — on a fast path whose
        legality is policy-dependent, graded in tiers:

        * ``2`` — unconditional: the policy is never consulted on a
          warm hit (:meth:`reactive_only` policies; the original fast
          path).
        * ``1`` — conditional: the cluster asks :meth:`warm_hit_ok`
          (an O(1) counter comparison) per warm hit; a ``True`` answer
          certifies ``scale_out`` would return 0 and mutate nothing, so
          the full consultation is skipped.  Observation-window counters
          (:meth:`observe_window`) are still fed.
        * ``0`` — never: every admitted arrival runs the full path
          (stateful policies: sliding windows, forecast histories).

        The default derives the tier from :meth:`reactive_only`, so
        existing policies keep their exact behaviour.
        """
        return 2 if self.reactive_only() else 0

    def warm_hit_ok(
        self, in_flight: int, live_containers: int, max_concurrency: int
    ) -> bool:
        """Whether a warm-hit arrival may skip ``scale_out`` right now.

        Consulted only at :meth:`fast_path_tier` ``1``, for an arrival
        that found a free slot on a ready container with nothing queued.
        ``in_flight`` counts the arrival itself (the post-dispatch
        concurrency).  Return ``True`` only when ``scale_out`` on the
        post-dispatch view would provably return 0 without mutating
        state — the implementation must evaluate the *same* float
        expressions ``scale_out`` would, so the answer is exact, not
        approximate.
        """
        return True

    def observe_arrival(self, state, now: float) -> None:
        """Feed one *admitted* arrival into the policy's traffic estimate."""

    def observation_window_s(self) -> float | None:
        """Width of the arrival-count windows this policy observes.

        ``None`` (the default) disables window bookkeeping entirely —
        the cluster maintains per-fleet window counters *only* for
        policies that return a positive width, so the hook is provably
        inert for every reactive policy (the golden regression pins it).
        A policy that returns a width here must not also claim
        :meth:`reactive_only`: the warm-hit fast path skips the window
        feed along with the rest of the policy machinery.
        """
        return None

    def observe_window(self, state, observation: WindowObservation) -> None:
        """Receive one closed observation window (no-op by default).

        Called by the cluster from the arrival path, *before* the
        arrival that closed the window is observed or scaled for — the
        counts are strictly of past windows.  Any state mutated here
        must round-trip through :meth:`export_state`/:meth:`restore_state`
        or checkpoints lose the learned history.
        """

    def scale_out(self, state, view: FleetView) -> int:
        """Containers to boot now (the cluster caps at ``max_containers``)."""
        raise NotImplementedError  # pragma: no cover - interface

    def decision(self, state, view: FleetView, want: int, booted: int) -> dict:
        """Explain the scale-out decision just taken, for the run journal.

        Called by the cluster *after* :meth:`scale_out` returned ``want``
        (and ``booted`` containers were actually spawned within the
        fleet ceiling), and only when an observability sink is installed
        and ``want > 0`` — never on the hot path.  Implementations MUST
        NOT mutate ``state`` (``scale_out`` already did whatever the
        decision required) and must be a pure read of the same inputs;
        overrides extend the base record with policy-specific fields
        (panic rates, forecast values, prewarm counts).
        """
        return {
            "policy": self.name,
            "queued": view.queued,
            "in_flight": view.in_flight,
            "live": view.live_containers,
            "want": want,
            "booted": booted,
        }

    def idle_expiry(
        self,
        state,
        idle_since: float,
        keep_alive_s: float,
        last_of_fleet: bool,
    ) -> float:
        """When an idle container retires if no further request reaches it.

        ``last_of_fleet`` is true for the container that would retire
        last under the base keep-alive ordering — the one whose
        retirement scales the fleet to zero.

        Implementations must never return *earlier* than ``idle_since +
        keep_alive_s``: the configured keep-alive is the floor, policies
        may only extend it (grace periods, panic suspensions).  The
        cluster's reap-scan hint relies on that floor to prove no
        container can retire before a given virtual time.
        """
        return idle_since + keep_alive_s


@dataclass(frozen=True)
class PerRequest(ScalingPolicy):
    """The pre-refactor rule: boot for every queued request, eagerly.

    Boots until the booting fleet's incoming capacity covers the queue
    (one slot per queued request), then retires capacity on plain
    keep-alive expiry.  Minimal container-seconds at low load, maximal
    cold-start exposure under bursts — the baseline the other policies
    trade against.  Bit-identical to the hard-coded scaler this module
    replaced (``tests/faas/test_golden_regression.py`` pins it).
    """

    name: ClassVar[str] = "per-request"

    def reactive_only(self) -> bool:
        # scale_out below is a pure function of the queue (0 when empty),
        # and observe_arrival is the base no-op: warm-hit arrivals may
        # legally bypass the policy machinery.
        return True

    def scale_out(self, state, view: FleetView) -> int:
        deficit = view.queued - view.booting_slots
        if deficit <= 0:
            return 0
        return -(-deficit // view.max_concurrency)  # ceil


@dataclass(frozen=True)
class TargetUtilization(ScalingPolicy):
    """Hold in-flight utilization at or below a target fraction.

    Provisions ``ceil(in_flight / (target * max_concurrency))``
    containers — spare warm slots proportional to load — while always
    covering the queue itself (so it degrades to :class:`PerRequest` for
    a single isolated request).  ``target=1.0`` means no headroom;
    ``target=0.5`` doubles the warm pool.  ``scale_to_zero_grace_s``
    extends only the *last* container's keep-alive, delaying the final
    scale-to-zero so a returning trickle of traffic finds one warm
    container.

    Attributes:
        target: Desired in-flight/capacity fraction, in ``(0, 1]``.
        scale_to_zero_grace_s: Extra idle lifetime for the fleet's last
            container (0 disables the grace).
    """

    target: float = 0.7
    scale_to_zero_grace_s: float = 0.0
    name: ClassVar[str] = "target-utilization"

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise SpecError(f"target utilization must be in (0, 1]: {self.target}")
        if self.scale_to_zero_grace_s < 0:
            raise SpecError(
                f"negative scale-to-zero grace: {self.scale_to_zero_grace_s}"
            )

    def uses_last_of_fleet(self) -> bool:
        return self.scale_to_zero_grace_s > 0

    def _desired(self, view: FleetView, concurrency_estimate: int) -> int:
        serve_backlog = -(-view.demand // view.max_concurrency)
        headroom = math.ceil(
            concurrency_estimate / (self.target * view.max_concurrency)
        )
        return max(serve_backlog, headroom)

    def scale_out(self, state, view: FleetView) -> int:
        return max(0, self._desired(view, view.in_flight) - view.live_containers)

    def fast_path_tier(self) -> int:
        # Stateless and queue-independent enough for the conditional
        # fast path: warm_hit_ok below evaluates exactly what scale_out
        # would, so a True answer skips nothing observable.
        return 1

    def warm_hit_ok(
        self, in_flight: int, live_containers: int, max_concurrency: int
    ) -> bool:
        # Mirror _desired exactly on the post-dispatch view (queued=0,
        # demand=in_flight): same integer-ceil for the backlog term, same
        # float divide + math.ceil for the headroom term — any algebraic
        # "simplification" could round differently and break the
        # bit-identity proof.
        desired = max(
            -(-in_flight // max_concurrency),
            math.ceil(in_flight / (self.target * max_concurrency)),
        )
        return desired <= live_containers

    def decision(self, state, view: FleetView, want: int, booted: int) -> dict:
        record = super().decision(state, view, want, booted)
        record["target"] = self.target
        record["desired"] = self._desired(view, view.in_flight)
        return record

    def idle_expiry(
        self,
        state,
        idle_since: float,
        keep_alive_s: float,
        last_of_fleet: bool,
    ) -> float:
        grace = self.scale_to_zero_grace_s if last_of_fleet else 0.0
        return idle_since + keep_alive_s + grace


class _PanicState:
    """Sliding arrival history plus the current panic deadline."""

    __slots__ = ("arrivals", "started_at", "panic_until", "panic_peak", "episodes")

    def __init__(self) -> None:
        self.arrivals: deque[float] = deque()
        self.started_at: float | None = None  # first admitted arrival
        self.panic_until: float = -math.inf
        self.panic_peak: int = 0  # max desired fleet size this episode
        #: Closed panic intervals ``[start, until]`` — extended in place
        #: while a panic persists; inspectable via
        #: :meth:`ClusterPlatform.scaling_state` for tests and reports.
        self.episodes: list[list[float]] = []

    def panicking(self, now: float) -> bool:
        return now < self.panic_until


@dataclass(frozen=True)
class PanicWindow(TargetUtilization):
    """Knative-style stable/panic dual-window autoscaling.

    Maintains a sliding window of admitted-arrival timestamps.  Each
    scale decision compares the arrival rate over the short *panic
    window* against the rate over the long *stable window*: when the
    panic-window rate reaches ``panic_threshold`` times the stable rate
    (and at least two arrivals landed in the panic window), the fleet
    enters panic mode for one stable window.  Each window's rate is
    normalized by the history it has actually observed, so a burst is
    only a burst *relative to an established baseline*: steady startup
    traffic never panics, and a scale-from-zero burst with no quiet
    history to contrast against is handled by ordinary demand-driven
    scaling until a baseline exists.  While panicking the fleet holds
    the *peak* demand-driven size the burst has reached this episode
    (Knative's max-during-panic rule) and *suspends scale-down* — no
    container retires before the panic deadline, so post-burst echoes
    find a warm fleet instead of a fresh round of cold starts.

    Attributes:
        target: Desired in-flight/capacity fraction, in ``(0, 1]``
            (inherited from :class:`TargetUtilization`).
        scale_to_zero_grace_s: Extra idle lifetime for the last container.
        stable_window_s: Long window for the baseline rate estimate;
            also the duration panic mode persists once triggered.
        panic_window_s: Short window for burst detection; must not
            exceed ``stable_window_s``.
        panic_threshold: Burst factor (panic rate / stable rate) that
            triggers panic; must be > 1.
    """

    stable_window_s: float = 60.0
    panic_window_s: float = 6.0
    panic_threshold: float = 2.0
    name: ClassVar[str] = "panic-window"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.panic_window_s <= 0:
            raise SpecError(f"panic window must be positive: {self.panic_window_s}")
        if self.stable_window_s <= 0:
            raise SpecError(f"stable window must be positive: {self.stable_window_s}")
        if self.panic_window_s > self.stable_window_s:
            raise SpecError(
                f"panic window ({self.panic_window_s}) exceeds stable window "
                f"({self.stable_window_s})"
            )
        if self.panic_threshold <= 1.0:
            raise SpecError(f"panic threshold must exceed 1: {self.panic_threshold}")

    def fast_path_tier(self) -> int:
        # The sliding arrival history must see every admitted arrival
        # (observe_arrival is stateful), so no warm hit may skip the
        # policy — the TargetUtilization tier-1 shortcut does not apply.
        return 0

    def new_state(self) -> _PanicState:
        return _PanicState()

    def export_state(self, state: _PanicState) -> dict:
        """JSON-safe dump of the sliding history + panic episode state."""
        return {
            "arrivals": list(state.arrivals),
            "started_at": state.started_at,
            # -inf (never panicked) is not JSON-representable; mark None.
            "panic_until": (
                None if math.isinf(state.panic_until) else state.panic_until
            ),
            "panic_peak": state.panic_peak,
            "episodes": [list(episode) for episode in state.episodes],
        }

    def restore_state(self, data: dict) -> _PanicState:
        state = _PanicState()
        state.arrivals = deque(data["arrivals"])
        state.started_at = data["started_at"]
        state.panic_until = (
            -math.inf if data["panic_until"] is None else data["panic_until"]
        )
        state.panic_peak = data["panic_peak"]
        state.episodes = [list(episode) for episode in data["episodes"]]
        return state

    def observe_arrival(self, state: _PanicState, now: float) -> None:
        if state.started_at is None:
            state.started_at = now
        state.arrivals.append(now)

    def _rates(self, state: _PanicState, now: float) -> tuple[float, float, int]:
        while state.arrivals and state.arrivals[0] <= now - self.stable_window_s:
            state.arrivals.popleft()
        stable_count = len(state.arrivals)
        horizon = now - self.panic_window_s
        panic_count = 0
        for stamp in reversed(state.arrivals):
            if stamp <= horizon:
                break
            panic_count += 1
        # Each window's rate is normalized by the history it actually
        # observed: before ``elapsed`` reaches a window's length, dividing
        # by the full window would make the short window's rate look
        # inflated relative to the long one's, and *any* startup traffic
        # — however steady — would register as a burst.  With the shared
        # clamp a burst is only a burst relative to an established
        # baseline, so panic mode needs quiet history to contrast with.
        elapsed = now - (state.started_at if state.started_at is not None else now)
        stable_span = max(min(elapsed, self.stable_window_s), 1e-9)
        panic_span = max(min(elapsed, self.panic_window_s), 1e-9)
        return (
            stable_count / stable_span,
            panic_count / panic_span,
            panic_count,
        )

    def scale_out(self, state: _PanicState, view: FleetView) -> int:
        now = view.now
        stable_rate, panic_rate, panic_count = self._rates(state, now)
        if panic_count >= 2 and panic_rate >= self.panic_threshold * stable_rate:
            until = now + self.stable_window_s
            if state.panicking(now) and state.episodes:
                state.episodes[-1][1] = until  # burst persists: extend
            else:
                state.episodes.append([now, until])
                state.panic_peak = 0  # a fresh episode tracks its own peak
            state.panic_until = until
        desired = self._desired(view, view.in_flight)
        # Knative's max-during-panic rule: while panicking, the fleet
        # holds the largest size the burst demanded so far this episode
        # (demand-driven — queued + in-flight concurrency — not the raw
        # arrival count, which would overshoot wildly whenever service
        # time is shorter than the panic window).
        if state.panicking(now):
            state.panic_peak = max(state.panic_peak, desired)
            desired = state.panic_peak
        return max(0, desired - view.live_containers)

    def decision(
        self, state: _PanicState, view: FleetView, want: int, booted: int
    ) -> dict:
        record = super().decision(state, view, want, booted)
        # _rates is idempotent at a fixed ``now`` (the prune is a no-op
        # the second time), so re-reading it here observes exactly what
        # scale_out just decided on without touching the decision.
        stable_rate, panic_rate, _ = self._rates(state, view.now)
        record["stable_rate"] = stable_rate
        record["panic_rate"] = panic_rate
        record["panicking"] = state.panicking(view.now)
        return record

    def idle_expiry(
        self,
        state: _PanicState,
        idle_since: float,
        keep_alive_s: float,
        last_of_fleet: bool,
    ) -> float:
        base = super().idle_expiry(state, idle_since, keep_alive_s, last_of_fleet)
        # Scale-down is suspended while panicking: a container whose
        # keep-alive elapses inside a panic period survives to its end.
        return max(base, state.panic_until)


#: CLI-facing policy registry (see ``slimstart cluster --policy``).
SCALING_POLICY_NAMES = (
    "per-request",
    "target-utilization",
    "panic-window",
    "predictive",
)


def make_scaling_policy(
    name: str,
    target: float = TargetUtilization.target,
    scale_to_zero_grace_s: float = TargetUtilization.scale_to_zero_grace_s,
    stable_window_s: float = PanicWindow.stable_window_s,
    panic_window_s: float = PanicWindow.panic_window_s,
    panic_threshold: float = PanicWindow.panic_threshold,
    forecaster: str = "ewma",
    season_windows: int | None = None,
    forecast_window_s: float | None = None,
    prewarm_lead_s: float | None = None,
    prewarm_headroom: float | None = None,
) -> ScalingPolicy:
    """Build a scaling policy from its CLI name.

    ``forecaster``/``season_windows``/``forecast_window_s``/
    ``prewarm_lead_s``/``prewarm_headroom`` configure ``predictive``
    only; for it, ``target`` and ``scale_to_zero_grace_s`` configure the
    wrapped :class:`TargetUtilization` base the policy falls back to
    while history is cold.
    """
    if name == "per-request":
        return PerRequest()
    if name == "target-utilization":
        return TargetUtilization(
            target=target, scale_to_zero_grace_s=scale_to_zero_grace_s
        )
    if name == "panic-window":
        return PanicWindow(
            target=target,
            scale_to_zero_grace_s=scale_to_zero_grace_s,
            stable_window_s=stable_window_s,
            panic_window_s=panic_window_s,
            panic_threshold=panic_threshold,
        )
    if name == "predictive":
        # Local import: forecast builds *on* the policy protocol here.
        from repro.faas.forecast import Predictive, make_forecaster

        overrides: dict = {}
        if forecast_window_s is not None:
            overrides["window_s"] = forecast_window_s
        if prewarm_lead_s is not None:
            overrides["prewarm_lead_s"] = prewarm_lead_s
        if prewarm_headroom is not None:
            overrides["headroom"] = prewarm_headroom
        return Predictive(
            base=TargetUtilization(
                target=target, scale_to_zero_grace_s=scale_to_zero_grace_s
            ),
            forecaster=make_forecaster(forecaster, season_windows=season_windows),
            **overrides,
        )
    raise SpecError(
        f"unknown scaling policy: {name!r} (choose from {SCALING_POLICY_NAMES})"
    )
