"""Deploy a production trace's synthetic fleet onto the simulators.

:mod:`repro.workloads.replay` compiles a
:class:`~repro.workloads.trace.ProductionTrace` into an arrival stream but
deliberately stays below the ``faas`` layer; this module is the bridge
that turns the trace's *applications* into deployable
:class:`~repro.faas.sim.SimAppConfig` specs so the stream has fleets to
land on.

Trace apps carry no synthetic library ecosystem — their handlers are
entry points with a flat self-time over an *empty* ecosystem, so a cold
start costs exactly the platform's container provisioning + runtime
init.  That is the right baseline for replay experiments that compare
autoscaling policies: what matters is *when* boots happen under the
trace's arrival shape, not what each boot loads.  (To study deferral
plans at trace scale, deploy real :class:`SimAppConfig` specs instead —
the streaming path is app-agnostic.)
"""

from __future__ import annotations

from repro.faas.sim import EntryBehavior, SimAppConfig
from repro.synthlib.spec import Ecosystem
from repro.workloads.trace import AppTrace, ProductionTrace

#: Trace apps execute no synthetic library code; one shared empty
#: ecosystem keeps :func:`repro.faas.sim.compiled_app`'s cache keyed
#: consistently across every trace app.
_EMPTY_ECOSYSTEM = Ecosystem()


def trace_app_config(
    app: AppTrace, exec_ms: float = 2.0, base_memory_mb: float = 96.0
) -> SimAppConfig:
    """A deployable :class:`SimAppConfig` for one trace application."""
    return SimAppConfig(
        name=app.name,
        ecosystem=_EMPTY_ECOSYSTEM,
        handler_imports=(),
        entries=tuple(
            EntryBehavior(name=entry, handler_self_ms=exec_ms)
            for entry in app.handlers
        ),
        base_memory_mb=base_memory_mb,
    )


def deploy_trace(
    platform,
    trace: ProductionTrace,
    exec_ms: float = 2.0,
    base_memory_mb: float = 96.0,
    fleet=None,
) -> list[str]:
    """Deploy every trace app onto a cluster or federation.

    ``platform`` is anything with the shared ``deploy(config, fleet=...)``
    surface: :class:`~repro.faas.cluster.ClusterPlatform` deploys one
    fleet per app, :class:`~repro.faas.region.RegionFederation` deploys
    each app to every region.  Returns the deployed app names.
    """
    names = []
    for app in trace.apps:
        config = trace_app_config(
            app, exec_ms=exec_ms, base_memory_mb=base_memory_mb
        )
        platform.deploy(config, fleet=fleet)
        names.append(app.name)
    return names


def expose_trace(gateway, trace: ProductionTrace) -> None:
    """Register every trace app's ``/<app>/<handler>`` gateway routes."""
    for app in trace.apps:
        gateway.expose(app.name, app.handlers)
