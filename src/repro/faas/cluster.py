"""Cluster-scale concurrent FaaS simulation: container fleets + event loop.

:class:`~repro.faas.sim.SimPlatform` models one container pool with
synchronous bookkeeping — enough for the paper's 500-cold-start protocol,
but not for fleet questions: how does the *cold-start rate* respond to
offered load, how long do requests queue while containers boot, how many
container-seconds does a keep-alive policy burn?  This module answers those
with a heap-based virtual-time event loop over per-application container
fleets:

* **Scale from zero** — a fleet holds no containers until traffic arrives;
  each arrival that exceeds the fleet's in-flight capacity boots a new
  container (up to :attr:`FleetConfig.max_containers`), which becomes ready
  after the cold-start delay (platform provisioning + the compiled eager
  import closure).
* **Request queueing** — arrivals beyond capacity wait in FIFO order; the
  queue drains as containers boot or finish invocations.  A bounded queue
  (:attr:`FleetConfig.queue_capacity`) sheds load instead.
* **Concurrency** — a container admits up to
  :attr:`FleetConfig.max_concurrency` in-flight invocations (1 = Lambda
  semantics; >1 models Knative-style request packing).
* **Keep-alive expiry** — a container idle longer than
  :attr:`FleetConfig.keep_alive_s` retires exactly at
  ``idle_since + keep_alive_s``; expiry is evaluated lazily against virtual
  time, which keeps the event loop causally correct when requests are
  injected one at a time (synchronous :meth:`ClusterPlatform.invoke`).
* **Pluggable autoscaling** — *when* the fleet boots a container and when
  an idle one may retire is decided by the fleet's
  :class:`~repro.faas.autoscale.ScalingPolicy`
  (:attr:`FleetConfig.policy`): per-request eager scaling (the default),
  target-utilization headroom, or Knative-style panic windows.  Admission
  control runs *before* scale-out, so a request shed by the bounded queue
  never triggers a container boot.
* **Cost view** — every fleet tracks provisioned GB-seconds per
  container, and :meth:`ClusterPlatform.fleet_stats` prices them through
  a :class:`~repro.metrics.PricingModel` into a
  :class:`~repro.metrics.CostSummary`, so autoscaler experiments report
  dollars next to cold-start rate and queueing percentiles.
* **Streaming replay** — :meth:`ClusterPlatform.run_stream` consumes a
  lazy arrival stream (e.g. a compiled production trace from
  :func:`repro.workloads.replay.compile_trace`) incrementally, folding
  records into a :class:`~repro.metrics.WindowAccumulator` instead of
  materializing them, so multi-day million-request replays run at
  O(windows) memory.  Event processing is bit-identical to the batch
  ``submit()``/``run()`` path.

The event loop is the throughput floor of every replay experiment, so its
hot path is deliberately allocation-light (see
``benchmarks/test_perf_replay_throughput.py`` for the measured floor):

* the common arrival — a warm container free, nothing queued — is served
  on a **fast path** that skips the queue, the admission check, and the
  scaling-policy consultation entirely (only legal for policies that
  declare :meth:`~repro.faas.autoscale.ScalingPolicy.reactive_only`);
* keep-alive reaping is gated by a per-fleet **expiry hint**
  (``_Fleet.reap_until``): no container can retire before it, so the
  per-arrival fleet scan is skipped until virtual time crosses it;
* fleet/container/request state objects carry ``__slots__``, containers
  are indexed by a ``seq -> container`` dict instead of a linear scan,
  and each fleet reuses **one mutable
  :class:`~repro.faas.autoscale.FleetView`** snapshot for scale decisions
  instead of constructing a frozen dataclass per arrival;
* streamed completions skip :class:`InvocationRecord` construction
  altogether when no ``on_record`` tap is installed — the accumulator
  needs only (app, arrival, cold, queue wait).

All of it is proven bit-identical to the straightforward implementation
by the golden regression (``tests/faas/test_golden_regression.py``) and
the stream-equivalence suite (``tests/faas/test_stream.py``).

The service-cost model is shared with the single-pool simulator through
:func:`repro.faas.sim.compiled_app`, so a :class:`~repro.plan.DeferralPlan`
shortens cluster cold starts exactly as it shortens ``SimPlatform`` cold
starts.  Everything is deterministic under :class:`SeededRNG`: identical
seeds and schedules reproduce bit-identical records.

Traffic enters either directly (:meth:`ClusterPlatform.submit` /
:meth:`invoke`) or through the :class:`~repro.faas.gateway.Gateway`, whose
``submit``/``submit_schedule`` methods route workload schedules from
:mod:`repro.workloads.arrival` into the fleet while feeding the adaptive
workload monitor.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Iterable

from repro.common.clock import VirtualClock
from repro.common.errors import DeploymentError, SpecError, WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.faas.autoscale import (
    FleetView,
    PerRequest,
    ScalingPolicy,
    WindowObservation,
)
from repro.faas.events import InvocationRecord
from repro.faas.gateway import Gateway
from repro.faas.sim import (
    CompiledApp,
    SimAppConfig,
    SimPlatformConfig,
    compiled_app,
)
from repro.metrics import (
    DEFAULT_PRICING,
    CostSummary,
    LatencySummary,
    PricingModel,
    QoSClass,
    RateSummary,
    WindowAccumulator,
    WindowedSummary,
    qos_registry,
)
from repro.plan import DeferralPlan

#: Event kinds, in processing order at equal virtual time: capacity is
#: released (boots complete, invocations finish) before new arrivals claim
#: it — mirroring SimPlatform's ``free_at <= arrival`` reuse rule.
_READY = 0
_COMPLETE = 1
_ARRIVAL = 2


@dataclass(frozen=True)
class FleetConfig:
    """Autoscaling policy for one application's container fleet.

    Attributes:
        max_containers: Hard scale-out ceiling.  Arrivals beyond what
            ``max_containers * max_concurrency`` can absorb wait in the
            FIFO queue (or are shed, see ``queue_capacity``).
        max_concurrency: In-flight invocations one container admits.
            ``1`` is Lambda semantics (a container serves one request at a
            time); larger values model Knative-style request packing.
        keep_alive_s: Idle lifetime.  A container with no in-flight work
            retires exactly ``keep_alive_s`` seconds after it last went
            idle; the next arrival after that pays a cold start.
        queue_capacity: Bound on *unservable* backlog.  ``None`` keeps an
            unbounded FIFO.  ``n`` sheds the newest arrival once the queue
            exceeds the fleet's bookable capacity (free slots on live
            containers plus every container still bootable) by more than
            ``n`` — so ``0`` means "serve or reject", not
            "reject everything".
        policy: The fleet's :class:`~repro.faas.autoscale.ScalingPolicy`
            — when containers boot and when idle ones may retire.
            Defaults to :class:`~repro.faas.autoscale.PerRequest`, the
            original eager scaler.  Policy parameter validation happens
            in the policy's own constructor (``SpecError`` on nonsense,
            e.g. a target utilization outside ``(0, 1]``).
    """

    max_containers: int = 8
    max_concurrency: int = 1  # in-flight invocations per container
    keep_alive_s: float = 600.0
    queue_capacity: int | None = None  # None = unbounded FIFO
    policy: ScalingPolicy = PerRequest()

    def __post_init__(self) -> None:
        if self.max_containers < 1:
            raise SpecError(f"fleet needs at least one container: {self.max_containers}")
        if self.max_concurrency < 1:
            raise SpecError(f"max_concurrency must be >= 1: {self.max_concurrency}")
        if self.keep_alive_s < 0:
            raise SpecError(f"negative keep-alive: {self.keep_alive_s}")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise SpecError(f"negative queue capacity: {self.queue_capacity}")
        if not isinstance(self.policy, ScalingPolicy):
            raise SpecError(f"not a scaling policy: {self.policy!r}")


@dataclass(frozen=True)
class FleetStats:
    """Aggregate fleet behaviour over one simulation (the cluster metrics).

    ``cold_start_rate`` against ``offered_load.per_second`` is the paper's
    fleet-scale story: init-time dominance only matters when real traffic
    keeps forcing cold starts.

    Attributes:
        app: Application name the fleet serves.
        arrivals: Requests that reached the fleet (served + shed).
        completed: Requests that finished service and produced a record.
        rejected: Requests shed by the bounded queue.
        cold_starts: Completed requests that paid a container boot.
        cold_start_rate: ``cold_starts / completed``.
        offered_load: Arrival rate over the observed span (first to last
            arrival), the x-axis of the cold-start-rate curve.
        queueing: Arrival-to-service-start waits, including boot waits.
        e2e: End-to-end latency (queueing + platform + init + exec).
        containers_spawned: Total containers ever booted.
        peak_containers: Largest simultaneous fleet size.
        container_seconds: Aggregate provisioned lifetime — the cost-model
            input (billable capacity, not busy time).
        gb_seconds: Provisioned memory-time (each container's lifetime
            weighted by its memory footprint), the billable quantity.
        cost: The dollar view of this run
            (:class:`~repro.metrics.CostSummary`), priced by the
            :class:`~repro.metrics.PricingModel` handed to
            :meth:`ClusterPlatform.fleet_stats`.
    """

    app: str
    arrivals: int
    completed: int
    rejected: int
    cold_starts: int
    cold_start_rate: float  # cold / completed
    offered_load: RateSummary  # arrivals over the observed span
    queueing: LatencySummary  # arrival -> service start, incl. boot waits
    e2e: LatencySummary
    containers_spawned: int
    peak_containers: int
    container_seconds: float  # aggregate provisioned lifetime
    gb_seconds: float  # lifetime weighted by memory footprint
    cost: CostSummary


@dataclass(slots=True)
class _FleetContainer:
    container_id: str
    seq: int
    spawned_at: float
    ready_at: float
    init_ms: float  # the cold-start init this container paid
    loaded: set
    memory_mb: float
    seen_entries: set = field(default_factory=set)
    active: int = 0
    virgin: bool = True  # no invocation served yet
    idle_since: float = 0.0  # valid while ready and active == 0
    last_release: float = 0.0


@dataclass(slots=True)
class _PendingRequest:
    token: int
    entry: str
    arrival: float
    qos: str | None = None  # QoS class name (wire format); None = untagged
    wire_ms: float = 0.0  # forwarding latency already spent (federation)


@dataclass(frozen=True)
class _StreamSinks:
    """Where a streaming replay's per-event facts go instead of RAM.

    While installed (see :meth:`ClusterPlatform.run_stream`), completed
    requests, shed arrivals, and container provisioned lifetimes are
    handed to these callbacks the moment they happen and are *not*
    retained on the fleet — the platform's memory stays O(live containers
    + queued requests) no matter how long the replay runs.

    ``complete`` receives the completion facts the accumulator needs
    ``(arrival_s, cold, queue_ms, app)`` — the accumulator's own
    ``observe_completion`` parameter order, so :meth:`into` binds the
    bound method directly with no adapter call on the hot path — plus,
    for QoS-tagged requests, the trailing ``(qos, violated, utility)``
    facts the per-class series need; the full
    :class:`InvocationRecord` is only constructed when
    ``record`` is non-``None`` (an ``on_record`` tap was installed) —
    skipping the record object on the no-tap path is one of the hot-path
    wins, and is safe because the record is a pure function of the same
    facts.  ``shed`` likewise accepts optional trailing
    ``(source, qos, penalty)`` so dropped QoS requests charge their drop
    penalty.  ``span`` (installed only when an observability sink with
    span sampling is active) receives each served request's phase
    breakdown for the trace journal — ``None`` on every other run, so
    the disabled path costs one attribute test, nothing more.
    """

    complete: Callable[..., None]
    shed: Callable[..., None]  # shed request's arrival time (+ qos facts)
    provision: Callable[[str, float, float, float], None]  # app, start, end, MB
    record: Callable[[InvocationRecord], None] | None = None
    span: Callable[..., None] | None = None  # sampled trace spans (obs)
    #: Span sampling stride (``JournalWriter.span_interval``); the caller
    #: applies ``token % span_interval`` so unsampled requests cost one
    #: modulo, never a call.  Only read when ``span`` is non-``None``.
    span_interval: int = 0

    @classmethod
    def into(
        cls,
        accumulator: WindowAccumulator,
        on_record: Callable[[InvocationRecord], None] | None = None,
        obs=None,
    ) -> "_StreamSinks":
        """Sinks that fold everything into one windowed accumulator.

        The single definition of what a streamed completion contributes
        (arrival-window attribution, cold flag, queueing wait, the app
        as the accumulator's source label, per-class QoS facts) — shared
        by the cluster's and the federation's ``run_stream`` so the two
        paths cannot diverge.  ``on_record`` taps the record stream;
        ``obs`` (an observability sink such as
        :class:`repro.obs.journal.JournalWriter`) tees the same facts
        into the run journal.  With ``obs=None`` the closures are
        byte-for-byte the pre-observability ones — journaling off means
        journaling *absent*.
        """
        if obs is not None:
            # Per-source counting rides the accumulator's existing
            # per-source dict probe (a few list updates, no second probe,
            # no wrapper closure), and the journal derives window delta
            # rows from the cumulative counters at flush time — so a
            # journaled completion runs the byte-identical closure below.
            # Order matters: enable first so the bound method below is
            # the counted one; attach snapshots the counters as already
            # flushed (exactly the restored state on a resumed run).
            accumulator.enable_source_counts()
            obs.attach(accumulator)
        # The completion sink IS the accumulator's bound method: the sink
        # signature was chosen to match observe_completion's parameter
        # order (arrival_s, cold, queue_ms, source, qos, violated,
        # utility), so no adapter closure sits on the hot path.
        complete = accumulator.observe_completion

        def provision(app: str, start_s: float, end_s: float, memory_mb: float) -> None:
            accumulator.observe_provision(start_s, end_s, memory_mb, source=app)

        if obs is None:
            return cls(
                complete=complete,
                shed=accumulator.observe_shed,
                provision=provision,
                record=on_record,
            )

        obs_shed = obs.shed
        obs_provision = obs.provision
        observe_shed = accumulator.observe_shed

        def shed_obs(
            at_s: float,
            source: str = "",
            qos: str | None = None,
            penalty: float = 0.0,
        ) -> None:
            observe_shed(at_s, source, qos, penalty)
            obs_shed(at_s, source)

        def provision_obs(
            app: str, start_s: float, end_s: float, memory_mb: float
        ) -> None:
            provision(app, start_s, end_s, memory_mb)
            obs_provision(start_s, app, end_s, memory_mb)

        return cls(
            complete=complete,
            shed=shed_obs,
            provision=provision_obs,
            record=on_record,
            span=obs.span if obs.samples_spans() else None,
            span_interval=obs.span_interval,
        )


class _Fleet:
    """Mutable per-application fleet state."""

    __slots__ = (
        "config",
        "plan",
        "fleet_config",
        "compiled",
        "entries",
        "policy",
        "policy_state",
        "wants_last",
        "fast_path",
        "in_flight",
        "booting",
        "obs_window_s",
        "window_index",
        "window_arrivals",
        "name",
        "cost_scale",
        "max_concurrency",
        "keep_alive_s",
        "view",
        "containers",
        "by_seq",
        "queue",
        "records",
        "arrivals",
        "rejected",
        "cold_starts",
        "spawned",
        "peak_containers",
        "retired_container_seconds",
        "retired_gb_seconds",
        "retirements",
        "first_arrival",
        "last_arrival",
        "reap_until",
        "jitter_rng",
    )

    def __init__(
        self,
        config: SimAppConfig,
        plan: DeferralPlan,
        fleet_config: FleetConfig,
    ) -> None:
        self.config = config
        self.plan = plan
        self.fleet_config = fleet_config
        self.compiled: CompiledApp = compiled_app(config, plan)
        #: Hot-path cache of ``compiled.entries`` (refreshed on
        #: redeploy): saves one attribute hop per served request.
        self.entries = self.compiled.entries
        self.policy: ScalingPolicy = fleet_config.policy
        self.policy_state = self.policy.new_state()
        #: Whether idle-expiry decisions need the (O(n)) last-of-fleet
        #: flag; policies that don't read it keep the hot path O(1).
        self.wants_last = self.policy.uses_last_of_fleet()
        #: How much of the warm-hit arrival path the policy may skip
        #: (see ScalingPolicy.fast_path_tier): 2 = unconditional,
        #: 1 = per-hit warm_hit_ok() check, 0 = never.
        self.fast_path = self.policy.fast_path_tier()
        #: Incremental fleet counters (the O(1) FleetView refresh).
        #: ``in_flight`` is the fleet-wide sum of container.active;
        #: ``booting`` counts containers with ready_at still in the
        #: future.  Invariant: a booting container always has
        #: ``active == 0`` (dispatch never selects one, and redeploy —
        #: the only retirement path for booting containers — requires an
        #: idle fleet), so these two integers determine every dynamic
        #: FleetView field; see ClusterPlatform._view.
        self.in_flight = 0
        self.booting = 0
        #: Observation-window feed (ScalingPolicy.observe_window): None
        #: disables the bookkeeping wholesale, so reactive policies pay
        #: nothing for the hook's existence.
        self.obs_window_s = self.policy.observation_window_s()
        if self.obs_window_s is not None and self.obs_window_s <= 0:
            raise SpecError(
                f"observation window must be positive: {self.obs_window_s}"
            )
        self.window_index: int | None = None  # open window's ordinal
        self.window_arrivals = 0  # admitted arrivals in the open window
        # Hot-path caches of frozen config fields (attribute chains cost).
        self.name = config.name
        self.cost_scale = config.cost_scale
        self.max_concurrency = fleet_config.max_concurrency
        self.keep_alive_s = fleet_config.keep_alive_s
        #: The one FleetView this fleet's scale decisions reuse; only the
        #: dynamic fields are overwritten per decision (see
        #: ClusterPlatform._view).
        self.view = FleetView(
            now=0.0,
            queued=0,
            in_flight=0,
            live_containers=0,
            booting_containers=0,
            booting_slots=0,
            ready_slots=0,
            max_containers=fleet_config.max_containers,
            max_concurrency=fleet_config.max_concurrency,
            keep_alive_s=fleet_config.keep_alive_s,
        )
        self.containers: list[_FleetContainer] = []
        self.by_seq: dict[int, _FleetContainer] = {}
        self.queue: deque[_PendingRequest] = deque()
        self.records: list[InvocationRecord] = []
        self.arrivals = 0
        self.rejected = 0
        self.cold_starts = 0
        self.spawned = 0
        self.peak_containers = 0
        self.retired_container_seconds = 0.0
        self.retired_gb_seconds = 0.0
        self.retirements: list[tuple[str, float]] = []
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        #: Expiry hint: no container of this fleet can retire strictly
        #: before this virtual time, so arrival processing skips the
        #: keep-alive reap scan until the clock crosses it.  Maintained
        #: by ClusterPlatform._reap as the min of the idle survivors'
        #: *base* expiries (idle_since + keep_alive, the floor every
        #: policy's idle_expiry must respect) and ``scan_time +
        #: keep_alive`` (the earliest a currently busy/booting container
        #: could retire after going idle later).
        self.reap_until = -math.inf
        self.jitter_rng: SeededRNG | None = None


class ClusterPlatform:
    """Virtual-time cluster: many containers per app, event-queue driven.

    Two usage modes share one engine:

    * **Batch replay** — ``submit()`` every arrival (directly or through
      :meth:`Gateway.submit_schedule`), then :meth:`run` drains the event
      heap; correct concurrency for arbitrarily overlapping requests.
    * **Synchronous** — :meth:`invoke` injects one arrival and processes
      events until that request's record exists, so the cluster satisfies
      the same ``invoke`` protocol :class:`Gateway.request` expects.
      Arrivals must be non-decreasing in time in both modes.
    """

    def __init__(
        self,
        config: SimPlatformConfig | None = None,
        fleet: FleetConfig | None = None,
        clock: VirtualClock | None = None,
        seed: int = 0,
        qos: Iterable[QoSClass] | None = None,
    ) -> None:
        self.config = config or SimPlatformConfig()
        self.default_fleet = fleet or FleetConfig()
        self.clock = clock or VirtualClock()
        self.seed = seed
        #: QoS class registry (name -> spec).  Requests submitted with a
        #: ``qos=`` tag resolve their deadline/utility semantics here at
        #: completion time; untagged requests never touch it, so a
        #: platform without QoS classes behaves bit-identically to one
        #: that predates them.
        self.qos_classes: dict[str, QoSClass] = (
            qos_registry(qos) if qos is not None else {}
        )
        self._fleets: dict[str, _Fleet] = {}
        self._events: list[tuple[float, int, int, tuple]] = []
        # Plain int counters (not itertools.count): same speed on the hot
        # path, and serializable by repro.faas.snapshot for checkpoints.
        self._next_container_seq = 1
        self._next_event_seq = 0
        self._next_token = 0
        self._finished: dict[int, InvocationRecord] = {}
        self._dropped: set[int] = set()
        self._last_arrival = self.clock.now()
        self._stream: _StreamSinks | None = None
        self._stream_accumulator: WindowAccumulator | None = None
        #: Observability sink for the active stream (None = no telemetry;
        #: only consulted off the fast path, at scaling decisions).
        self._obs = None
        self._jitter_sigma = self.config.jitter_sigma
        # Hot-path cache: warm_platform_ms is read per served request.
        self._warm_ms = self.config.warm_platform_ms

    # -- deployment --------------------------------------------------------

    def deploy(
        self,
        config: SimAppConfig,
        plan: DeferralPlan | None = None,
        fleet: FleetConfig | None = None,
    ) -> str:
        """Deploy an application with its fleet policy."""
        if config.name in self._fleets:
            raise DeploymentError(f"app already deployed: {config.name!r}")
        self._fleets[config.name] = _Fleet(
            config,
            plan or DeferralPlan.empty(config.name),
            fleet or self.default_fleet,
        )
        return config.name

    def redeploy(self, name: str, plan: DeferralPlan) -> None:
        """Apply a plan: boots fresh containers on the next arrivals."""
        fleet = self._fleet(name)
        if plan.app != name:
            raise DeploymentError(f"plan is for {plan.app!r}, not {name!r}")
        if fleet.queue or any(c.active for c in fleet.containers):
            raise DeploymentError(
                f"cannot redeploy {name!r} with requests in flight; run() first"
            )
        now = self.clock.now()
        for container in fleet.containers:
            self._retire(fleet, container, now)
        fleet.containers.clear()
        fleet.by_seq.clear()
        # The guard above proved nothing is in flight; any still-booting
        # container was just retired, so both incremental counters reset.
        fleet.in_flight = 0
        fleet.booting = 0
        fleet.reap_until = -math.inf
        fleet.plan = plan
        fleet.compiled = compiled_app(fleet.config, plan)
        fleet.entries = fleet.compiled.entries

    def app_names(self) -> list[str]:
        return sorted(self._fleets)

    def plan_for(self, name: str) -> DeferralPlan:
        return self._fleet(name).plan

    def _fleet(self, name: str) -> _Fleet:
        try:
            return self._fleets[name]
        except KeyError:
            raise DeploymentError(f"unknown app: {name!r}") from None

    # -- traffic -----------------------------------------------------------

    def submit(
        self,
        name: str,
        entry: str,
        at: float | None = None,
        qos: str | None = None,
        wire_ms: float = 0.0,
    ) -> int:
        """Enqueue one arrival event; returns its request token.

        The record materializes when :meth:`run` (or a later synchronous
        :meth:`invoke`) processes virtual time past the request's
        completion.  ``qos`` tags the request with a QoS class (by name,
        resolved against the platform's registry); ``wire_ms`` is
        forwarding latency the request already spent upstream (the
        federation's inter-region hop), charged against the class
        deadline at completion.  Untagged submissions keep the original
        3-tuple event payload, so pre-QoS replays stay bit-identical.
        """
        fleet = self._fleet(name)
        if entry not in fleet.compiled.entries:
            raise DeploymentError(f"app {name!r} has no entry {entry!r}")
        if qos is not None and qos not in self.qos_classes:
            raise SpecError(
                f"unknown QoS class {qos!r} "
                f"(platform knows {sorted(self.qos_classes)})"
            )
        arrival = self.clock.now() if at is None else at
        if arrival < self._last_arrival:
            raise DeploymentError(
                f"arrival {arrival} is in the past (last={self._last_arrival})"
            )
        self._last_arrival = arrival
        token = self._next_token
        self._next_token = token + 1
        seq = self._next_event_seq
        self._next_event_seq = seq + 1
        if qos is None and wire_ms == 0.0:
            payload = (name, entry, token)
        else:
            payload = (name, entry, token, qos, wire_ms)
        heappush(self._events, (arrival, _ARRIVAL, seq, payload))
        return token

    def invoke(self, name: str, entry: str, at: float | None = None) -> InvocationRecord:
        """Synchronous request: submit, then simulate until it completes.

        Processing may advance virtual time past later queued events; that
        is causally safe because FIFO dispatch means later arrivals can
        only queue *behind* this request, and keep-alive expiry is
        evaluated lazily against each event's own timestamp.
        """
        token = self.submit(name, entry, at=at)
        while token not in self._finished:
            if token in self._dropped:
                raise WorkloadError(
                    f"request to {name!r}:{entry!r} was shed (queue full)"
                )
            if not self._step():
                raise WorkloadError("event queue drained without completing request")
        return self._finished.pop(token)

    def run(self, until: float | None = None) -> list[InvocationRecord]:
        """Drain the event heap (optionally only up to ``until`` seconds).

        Returns the records completed by this call, in completion order.
        """
        before = {name: len(fleet.records) for name, fleet in self._fleets.items()}
        events = self._events
        step = self._step
        while events:
            if until is not None and events[0][0] > until:
                break
            step()
        if until is not None and self.clock.now() < until:
            self.clock.advance_to(until)
        # Per-request bookkeeping for synchronous callers is complete once
        # the heap drains: clearing both maps here is what keeps repeated
        # batch runs at O(live state), not O(all requests ever shed).
        self._finished.clear()
        self._dropped.clear()
        produced: list[InvocationRecord] = []
        for name, fleet in self._fleets.items():
            produced.extend(fleet.records[before[name]:])
        produced.sort(key=lambda record: (record.timestamp + record.e2e_ms / 1000.0))
        return produced

    def run_stream(
        self,
        arrivals: Iterable[tuple[float, str, str]],
        accumulator: WindowAccumulator,
        on_record: Callable[[InvocationRecord], None] | None = None,
        flush_at: float | None = None,
        obs=None,
        finalize: bool = True,
    ) -> WindowedSummary | None:
        """Consume an arrival stream incrementally at bounded memory.

        ``arrivals`` yields ``(arrival_s, app, entry)`` — or QoS-tagged
        ``(arrival_s, app, entry, qos_name)`` from
        :func:`repro.workloads.replay.assign_qos` — in non-decreasing
        time order (e.g. from :func:`repro.workloads.replay.compile_trace`).
        Each arrival is submitted and the event heap is drained up to its
        timestamp before the next one is pulled, so the heap only ever
        holds the causal frontier — never the whole schedule.  Completed
        records, shed arrivals, and container retirements fold straight
        into ``accumulator`` (a :class:`~repro.metrics.WindowAccumulator`)
        instead of accumulating on the fleets, which is what lets a
        million-request, multi-day replay run in O(windows) memory.

        Event processing is bit-identical to the materialized
        ``submit()``-then-``run()`` path — same heap, same tie-breaking —
        so a streamed replay produces exactly the records a batch replay
        would (pinned by ``tests/faas/test_stream.py``).  ``on_record``
        taps the record stream (tests, exports); leave it ``None`` to
        retain nothing — the hot path then skips record construction
        entirely.  While streaming, per-record history (:meth:`records`,
        :meth:`fleet_stats`, :meth:`retirements`) is not collected; the
        returned :class:`~repro.metrics.WindowedSummary` is the run's
        report.

        ``flush_at`` overrides the virtual time at which still-alive
        containers' provisioned tails are truncated (default: the clock
        after the last event).  Sharded replays pass ``math.inf`` so
        every container is charged to its natural keep-alive expiry — a
        quantity independent of which shard observed it, which is part
        of the sharding exactness argument (see
        :mod:`repro.workloads.shard`).

        ``obs`` installs an observability sink (journal) for the run —
        see :meth:`stream_begin`.  ``finalize=False`` skips the final
        summarization and returns ``None`` — for shard workers that ship
        the accumulator's raw state instead (see
        :meth:`repro.metrics.WindowAccumulator.to_wire`).
        """
        self.stream_begin(accumulator, on_record, obs=obs)
        token = self._next_token
        last = self._last_arrival
        try:
            fleets = self._fleets
            events = self._events
            clock = self.clock
            advance_to = clock.advance_to
            # Time-keeping fast path: ClusterPlatform's clock is a
            # VirtualClock (constructor contract), and the replay never
            # schedules clock callbacks — so while the callback queue is
            # empty, advancing time is one attribute store.  The list
            # identity is stable (VirtualClock mutates it in place), so
            # hoisting it keeps the emptiness probe a local truth test;
            # any scheduled callback falls back to the full advance_to.
            clock_events = clock._events
            drain = self._drain_until
            # Profiling swaps a probed _drain_until onto the instance;
            # the inline drain below would bypass it, so a profiled
            # stream keeps the delegate call (accuracy over the last
            # sliver of call overhead, exactly while measuring).
            probed = "_drain_until" in self.__dict__
            on_ready = self._on_ready
            dispatch = self._dispatch
            arrive = self._arrive
            qos_classes = self.qos_classes
            observe_arrival = accumulator.observe_arrival
            # Journal flushing is driver-screened: one float compare per
            # arrival against the journal's next window edge, with the
            # flush call (and consumed-count bookkeeping) paid only at
            # boundaries.  obs=None pins the screen at +inf — the loop
            # body is then identical to the pre-observability one.
            obs_flush = math.inf if obs is None else obs.next_flush_s
            fed = 0
            for item in arrivals:
                # Untagged 3-tuples stay on the allocation-free unpack;
                # QoS-tagged streams carry the class name at index 3.
                if len(item) == 3:
                    at, name, entry = item
                    qos = None
                else:
                    at, name, entry, qos = item
                if at >= obs_flush:
                    obs.flush_boundary(at, fed)
                    obs_flush = obs.next_flush_s
                fed += 1
                observe_arrival(at)
                # Streamed arrivals bypass the event heap: the submit()
                # validations run inline, every pending event at or
                # before the arrival is drained (all such events precede
                # an arrival at the same instant in heap order — READY
                # and COMPLETE kinds sort first), and the arrival handler
                # is called directly.  The post-arrival drain keeps
                # zero-service completions at the same timestamp
                # processed before the next arrival is pulled, exactly
                # as the heap path interleaved them.
                fleet = fleets.get(name)
                if fleet is None:
                    raise DeploymentError(f"unknown app: {name!r}")
                if entry not in fleet.entries:
                    raise DeploymentError(f"app {name!r} has no entry {entry!r}")
                if qos is not None and qos not in qos_classes:
                    raise SpecError(
                        f"unknown QoS class {qos!r} "
                        f"(platform knows {sorted(qos_classes)})"
                    )
                if at < last:
                    raise DeploymentError(
                        f"arrival {at} is in the past (last={last})"
                    )
                last = at
                if events and events[0][0] <= at:
                    if probed:
                        drain(at)
                    else:
                        # _drain_until inlined (the call per arrival is
                        # measurable at replay rates), with _on_complete
                        # — the overwhelming event kind — flattened into
                        # the COMPLETE arm.  Behaviour is identical to
                        # those two methods: same pops, same ordering
                        # (the golden regression pins it).
                        while events and events[0][0] <= at:
                            e_at, kind, _, payload = heappop(events)
                            if e_at > clock._now:
                                if clock_events:
                                    advance_to(e_at)
                                else:
                                    clock._now = e_at
                            if kind == _COMPLETE:
                                c_fleet = fleets[payload[0]]
                                container = c_fleet.by_seq.get(payload[1])
                                if container is not None:
                                    c_fleet.in_flight -= 1
                                    active = container.active - 1
                                    container.active = active
                                    container.last_release = e_at
                                    if active == 0:
                                        container.idle_since = e_at
                                    if c_fleet.queue:
                                        dispatch(c_fleet, e_at)
                            elif kind == _READY:
                                on_ready(e_at, *payload)
                            else:
                                self._on_arrival(e_at, *payload)
                if at > clock._now:
                    if clock_events:
                        advance_to(at)
                    else:
                        clock._now = at
                arrive(fleet, at, entry, token, qos)
                token += 1
                if events and events[0][0] <= at:
                    if probed:
                        drain(at)
                    else:
                        # Same inline drain as above (see that comment);
                        # the post-arrival copy keeps zero-service
                        # completions at == at ahead of the next arrival.
                        while events and events[0][0] <= at:
                            e_at, kind, _, payload = heappop(events)
                            if e_at > clock._now:
                                if clock_events:
                                    advance_to(e_at)
                                else:
                                    clock._now = e_at
                            if kind == _COMPLETE:
                                c_fleet = fleets[payload[0]]
                                container = c_fleet.by_seq.get(payload[1])
                                if container is not None:
                                    c_fleet.in_flight -= 1
                                    active = container.active - 1
                                    container.active = active
                                    container.last_release = e_at
                                    if active == 0:
                                        container.idle_since = e_at
                                    if c_fleet.queue:
                                        dispatch(c_fleet, e_at)
                            elif kind == _READY:
                                on_ready(e_at, *payload)
                            else:
                                self._on_arrival(e_at, *payload)
            step = self._step
            while events:
                step()
            self._flush_provisioned(flush_at)
        finally:
            self._next_token = token
            self._last_arrival = last
            self._stream = None
            self._stream_accumulator = None
            self._obs = None
            self._unprofile_loop()
        # ``finalize=False`` leaves summarization to the caller: shard
        # workers ship the accumulator's raw state over the pool wire
        # (WindowAccumulator.to_wire) and the coordinator summarizes the
        # merged state exactly once (repro.metrics.windows.merge_wire).
        return accumulator.finalize() if finalize else None

    # -- incremental streaming surface ------------------------------------
    #
    # run_stream() in three resumable pieces, for drivers that need to act
    # between arrivals (repro.faas.snapshot writes checkpoints there).
    # stream_begin + N x stream_feed + stream_end is bit-identical to one
    # run_stream call over the same arrivals.

    def stream_begin(
        self,
        accumulator: WindowAccumulator,
        on_record: Callable[[InvocationRecord], None] | None = None,
        obs=None,
    ) -> None:
        """Install streaming sinks (see :meth:`run_stream`).

        ``obs`` is an observability sink (duck-typed to
        :class:`repro.obs.journal.JournalWriter`): the per-event sinks
        tee into it, scaling decisions are journaled from :meth:`_scale`,
        and sampled trace spans flow from :meth:`_start_service` — all
        off the event loop's fast paths, and all absent when ``obs`` is
        ``None``.
        """
        if self._stream is not None:
            raise WorkloadError("a streaming replay is already in progress")
        self._stream = _StreamSinks.into(accumulator, on_record, obs=obs)
        self._stream_accumulator = accumulator
        self._obs = obs

    def stream_feed(
        self, at: float, name: str, entry: str, qos: str | None = None
    ) -> None:
        """Feed one arrival and drain the event heap up to its time.

        Journal boundary flushing is the *driver's* job in this mode
        (see :func:`repro.faas.snapshot.run_stream_checkpointed`) — the
        checkpoint loop already tracks window crossings and the consumed
        count, so no obs code runs here.
        """
        self._stream_accumulator.observe_arrival(at)
        # Same heap bypass as run_stream: inline submit() validation,
        # drain-to-at, direct arrival handling, post-arrival drain.
        fleet = self._fleets.get(name)
        if fleet is None:
            raise DeploymentError(f"unknown app: {name!r}")
        if entry not in fleet.entries:
            raise DeploymentError(f"app {name!r} has no entry {entry!r}")
        if qos is not None and qos not in self.qos_classes:
            raise SpecError(
                f"unknown QoS class {qos!r} "
                f"(platform knows {sorted(self.qos_classes)})"
            )
        if at < self._last_arrival:
            raise DeploymentError(
                f"arrival {at} is in the past (last={self._last_arrival})"
            )
        self._last_arrival = at
        token = self._next_token
        self._next_token = token + 1
        events = self._events
        if events and events[0][0] <= at:
            self._drain_until(at)
        clock = self.clock
        if at > clock.now():
            clock.advance_to(at)
        self._arrive(fleet, at, entry, token, qos)
        if events and events[0][0] <= at:
            self._drain_until(at)

    def stream_end(self, flush_at: float | None = None) -> WindowedSummary:
        """Drain remaining events, flush tails, finalize the summary."""
        try:
            step = self._step
            while self._events:
                step()
            self._flush_provisioned(flush_at)
        finally:
            accumulator = self._stream_accumulator
            self._stream = None
            self._stream_accumulator = None
            self._obs = None
            self._unprofile_loop()
        return accumulator.finalize()

    def stream_abort(self) -> None:
        """Uninstall streaming sinks after an interrupted stream.

        Leaves fleet/heap state exactly as the last processed event left
        it, so a checkpoint written earlier stays consistent; the
        platform refuses further streaming until a fresh
        :meth:`stream_begin`.
        """
        self._stream = None
        self._stream_accumulator = None
        self._obs = None
        self._unprofile_loop()

    def profile_loop(self, profiler) -> None:
        """Split the event loop into profiler sub-phases for one stream.

        Installs :meth:`repro.obs.profile.PhaseProfiler.probe` wrappers
        over the two hot delegates the streaming loop re-reads from the
        instance — ``_drain_until`` (event-heap drains: READY/COMPLETE
        processing) and ``_scale`` (policy consultation + spawns) — by
        shadowing the class methods with instance attributes.  The
        remainder of the loop's wall time (arrival handling + dispatch)
        is then derivable as ``event-loop`` minus the two sub-phases
        (see the bench's ``event-loop-dispatch`` derived phase).  The
        wrappers are removed when the stream ends or aborts, so probes
        never outlive the run they measured.
        """
        self._unprofile_loop()
        self._drain_until = profiler.probe("event-loop-drain", self._drain_until)
        self._scale = profiler.probe("event-loop-scale", self._scale)

    def _unprofile_loop(self) -> None:
        """Drop any installed sub-phase probes (restore class methods)."""
        self.__dict__.pop("_drain_until", None)
        self.__dict__.pop("_scale", None)

    def _flush_provisioned(self, flush_at: float | None = None) -> None:
        """Report still-live containers' provisioned time to the stream.

        Containers retired mid-replay streamed their lifetimes through
        :meth:`_retire`; the tail of the fleet is still alive (or expired
        but not yet lazily reaped) when the arrival stream ends, so its
        GB-seconds are flushed here, mirroring :meth:`fleet_stats`'
        alive-container accounting.  ``flush_at`` overrides the
        truncation time (``math.inf`` charges full keep-alive tails).
        """
        now = self.clock.now() if flush_at is None else flush_at
        provision = self._stream.provision
        for fleet in self._fleets.values():
            for container in fleet.containers:
                end = min(now, self._expiry(fleet, container, now))
                provision(
                    fleet.name,
                    container.spawned_at,
                    max(end, container.spawned_at),
                    container.memory_mb,
                )

    # -- results -----------------------------------------------------------

    def records(self, name: str) -> list[InvocationRecord]:
        return list(self._fleet(name).records)

    def clear_history(self, name: str) -> None:
        self._fleet(name).records.clear()

    def load(self, name: str | None = None) -> int:
        """Outstanding demand: queued plus in-flight requests.

        With ``name`` the count covers one application's fleet; without it,
        the whole platform.  This is the signal latency-aware routers key
        on (see :class:`repro.faas.region.LeastLoadedPolicy`): it rises the
        moment a request is admitted and falls when service completes, so
        it tracks pressure even while containers are still booting.
        """
        fleets = [self._fleet(name)] if name is not None else list(self._fleets.values())
        return sum(len(fleet.queue) + fleet.in_flight for fleet in fleets)

    def accepts(self, name: str, at: float | None = None, extra: int = 0) -> bool:
        """Whether one more arrival at ``at`` would escape the load-shedder.

        Mirrors the admission rule in arrival processing: a request is shed
        only when it exceeds the fleet's bookable capacity — free slots on
        live containers plus every container the autoscaler could still
        boot — by more than :attr:`FleetConfig.queue_capacity`.  Unbounded
        queues always accept.  Routers use this to fail over away from a
        shedding region without mutating fleet state; ``extra`` lets them
        count arrivals they have already committed but not yet delivered
        (requests still on the wire).
        """
        fleet = self._fleet(name)
        capacity = fleet.fleet_config.queue_capacity
        if capacity is None:
            return True
        now = self.clock.now() if at is None else at
        return (
            len(fleet.queue) + 1 + extra
            <= capacity + self._bookable_capacity(fleet, now)
        )

    def bookable_capacity(self, name: str, at: float | None = None) -> int:
        """Slots the fleet can still book at ``at`` (see ``accepts``).

        Free slots on live containers plus every container the hard cap
        still allows to boot, times concurrency.  Routing optimizers use
        this as their local-capacity signal
        (:class:`repro.faas.region.ProbabilisticOffloadPolicy`).
        """
        fleet = self._fleet(name)
        now = self.clock.now() if at is None else at
        return self._bookable_capacity(fleet, now)

    def live_containers(self, name: str, at: float | None = None) -> int:
        """Containers not yet expired at ``at`` (ready or still booting).

        Evaluates keep-alive (and the policy's scale-down suspensions)
        lazily against ``at`` without mutating fleet state.  ``at`` must
        be at or after the last processed event: containers already
        reaped by earlier processing are gone, so probing further into
        the past undercounts (consult :meth:`retirements` for history).
        """
        fleet = self._fleet(name)
        now = self.clock.now() if at is None else at
        return sum(
            1
            for container in fleet.containers
            if self._expiry(fleet, container, now) >= now
        )

    def scaling_state(self, name: str):
        """The fleet's mutable policy state (e.g. panic episodes); may be
        ``None`` for stateless policies.  Read-only introspection for
        tests and reports."""
        return self._fleet(name).policy_state

    def retirements(self, name: str) -> list[tuple[str, float]]:
        """``(container_id, retired_at)`` for every container reaped so far.

        Retirement is lazy: a container appears here once a later event
        (or a stats snapshot) observes that its keep-alive elapsed.
        """
        return list(self._fleet(name).retirements)

    def fleet_stats(
        self, name: str, pricing: PricingModel | None = None
    ) -> FleetStats:
        """Aggregate fleet metrics over everything simulated so far.

        ``pricing`` configures the dollar view (defaults to
        :data:`~repro.metrics.DEFAULT_PRICING`, Lambda-like rates).
        """
        fleet = self._fleet(name)
        records = fleet.records
        if not records:
            raise WorkloadError(f"no completed invocations for {name!r}")
        now = self.clock.now()
        cold = sum(1 for record in records if record.cold)
        span = (
            (fleet.last_arrival - fleet.first_arrival)
            if fleet.first_arrival is not None
            and fleet.last_arrival > fleet.first_arrival
            else 0.0
        )
        alive_seconds = 0.0
        alive_gb_seconds = 0.0
        for container in fleet.containers:
            lifetime = max(
                0.0,
                min(now, self._expiry(fleet, container, now))
                - container.spawned_at,
            )
            alive_seconds += lifetime
            alive_gb_seconds += lifetime * container.memory_mb / 1024.0
        gb_seconds = fleet.retired_gb_seconds + alive_gb_seconds
        # Bill served traffic only: shed requests are never charged (the
        # pricing model is Lambda-like, and throttled requests don't
        # bill), and per-1k normalization must not be diluted by them.
        cost = CostSummary.from_usage(
            gb_seconds,
            len(records),
            fleet.spawned,
            pricing if pricing is not None else DEFAULT_PRICING,
        )
        return FleetStats(
            app=name,
            arrivals=fleet.arrivals,
            completed=len(records),
            rejected=fleet.rejected,
            cold_starts=cold,
            cold_start_rate=cold / len(records),
            offered_load=RateSummary.from_events(fleet.arrivals, span),
            queueing=LatencySummary.from_values(
                [record.queue_ms for record in records]
            ),
            e2e=LatencySummary.from_values([record.e2e_ms for record in records]),
            containers_spawned=fleet.spawned,
            peak_containers=fleet.peak_containers,
            container_seconds=fleet.retired_container_seconds + alive_seconds,
            gb_seconds=gb_seconds,
            cost=cost,
        )

    # -- event loop --------------------------------------------------------

    def _push(self, at: float, kind: int, payload: tuple) -> None:
        seq = self._next_event_seq
        self._next_event_seq = seq + 1
        heappush(self._events, (at, kind, seq, payload))

    def _step(self) -> bool:
        """Process one event; returns False when the heap is empty."""
        events = self._events
        if not events:
            return False
        at, kind, _, payload = heappop(events)
        clock = self.clock
        if at > clock.now():
            clock.advance_to(at)
        if kind == _ARRIVAL:
            self._on_arrival(at, *payload)
        elif kind == _READY:
            self._on_ready(at, *payload)
        else:
            self._on_complete(at, *payload)
        return True

    def _drain_until(self, at: float) -> None:
        """Process every heap event at or before ``at``.

        The :meth:`_step` loop with the per-event function call and
        emptiness re-test inlined — the streaming replay's drain is hot
        enough that the call overhead alone is measurable.  Behaviour is
        exactly ``while events and events[0][0] <= at: self._step()``.
        """
        events = self._events
        clock = self.clock
        clock_now = clock.now
        advance_to = clock.advance_to
        on_ready = self._on_ready
        on_complete = self._on_complete
        while events and events[0][0] <= at:
            e_at, kind, _, payload = heappop(events)
            if e_at > clock_now():
                advance_to(e_at)
            if kind == _READY:
                on_ready(e_at, *payload)
            elif kind == _COMPLETE:
                on_complete(e_at, *payload)
            else:
                self._on_arrival(e_at, *payload)

    def _on_arrival(
        self,
        at: float,
        name: str,
        entry: str,
        token: int,
        qos: str | None = None,
        wire_ms: float = 0.0,
    ) -> None:
        self._arrive(self._fleets[name], at, entry, token, qos, wire_ms)

    def _arrive(
        self,
        fleet: _Fleet,
        at: float,
        entry: str,
        token: int,
        qos: str | None = None,
        wire_ms: float = 0.0,
    ) -> None:
        fleet.arrivals += 1
        if fleet.first_arrival is None:
            fleet.first_arrival = at
        fleet.last_arrival = at
        if at > fleet.reap_until:
            self._reap(fleet, at)
        # Fast path for the overwhelmingly common replay arrival: nothing
        # queued and a warm container has a free slot.  The request can
        # never be shed (the queue stays empty), and the policy tier
        # certifies the consultation may be skipped: tier 2
        # (reactive-only) policies provably neither boot nor mutate
        # state for a warm hit; tier 1 policies are asked per hit via
        # warm_hit_ok — an O(1) replica of the scale_out arithmetic on
        # the incremental counters — and observation-window counters are
        # still fed after service starts, exactly where the slow path
        # feeds them.  The reap above (or the hint that made it
        # unnecessary) guarantees no candidate below is expired.
        tier = fleet.fast_path
        if tier and not fleet.queue:
            best = None
            mc = fleet.max_concurrency
            for container in fleet.containers:
                if container.ready_at > at or container.active >= mc:
                    continue
                if best is None or (
                    container.active,
                    container.last_release,
                    container.seq,
                ) > (best.active, best.last_release, best.seq):
                    best = container
            if best is not None and (
                tier == 2
                or fleet.policy.warm_hit_ok(
                    fleet.in_flight + 1, len(fleet.containers), mc
                )
            ):
                self._start_service(fleet, best, entry, at, at, token, qos, wire_ms)
                if fleet.obs_window_s is not None:
                    self._feed_window(fleet, at)
                return
        fleet.queue.append(
            _PendingRequest(
                token=token, entry=entry, arrival=at, qos=qos, wire_ms=wire_ms
            )
        )
        self._dispatch(fleet, at)
        # Admission control runs after dispatch but BEFORE scale-out: a
        # request is shed when it exceeds the fleet's bookable capacity
        # (free slots on live containers plus every container still
        # bootable) by more than queue_capacity, so capacity=0 means
        # "throttle like Lambda" — serve or reject — not "reject all
        # traffic".  Shedding first guarantees a rejected request never
        # triggers scale-out (and never feeds the policy's traffic
        # estimate); for the eager PerRequest policy the two orderings
        # are provably identical, which the golden regression pins.
        capacity = fleet.fleet_config.queue_capacity
        shed_self = False
        if capacity is not None:
            bookable = self._bookable_capacity(fleet, at)
            while len(fleet.queue) - bookable > capacity:
                shed = fleet.queue.pop()  # newest arrival loses
                fleet.rejected += 1
                shed_self = shed_self or shed.token == token
                if self._stream is not None:
                    if shed.qos is None:
                        # The app name rides along for the journal's
                        # per-app attribution; the accumulator ignores
                        # the source on un-tagged sheds, so pre-obs
                        # summaries are unchanged.
                        self._stream.shed(shed.arrival, fleet.name)
                    else:
                        self._stream.shed(
                            shed.arrival,
                            fleet.name,
                            shed.qos,
                            self.qos_classes[shed.qos].drop_penalty,
                        )
                else:
                    self._dropped.add(shed.token)
        if shed_self or token in self._dropped:
            return
        if fleet.obs_window_s is not None:
            self._feed_window(fleet, at)
        fleet.policy.observe_arrival(fleet.policy_state, at)
        self._scale(fleet, at)

    def _on_ready(self, at: float, name: str, container_seq: int) -> None:
        fleet = self._fleets[name]
        container = fleet.by_seq.get(container_seq)
        if container is None:
            return  # retired by a redeploy while booting (counter already reset)
        fleet.booting -= 1
        container.idle_since = at
        container.last_release = at
        if fleet.queue:
            self._dispatch(fleet, at)

    def _on_complete(
        self, at: float, name: str, container_seq: int, token: int
    ) -> None:
        fleet = self._fleets[name]
        container = fleet.by_seq.get(container_seq)
        if container is not None:
            fleet.in_flight -= 1
            active = container.active - 1
            container.active = active
            container.last_release = at
            if active == 0:
                container.idle_since = at
            if fleet.queue:
                self._dispatch(fleet, at)

    # -- fleet mechanics ---------------------------------------------------

    def _feed_window(self, fleet: _Fleet, at: float) -> None:
        """Fold one admitted arrival into the fleet's observation windows.

        Windows close lazily: the first admitted arrival past a boundary
        delivers every window it skipped (including empty ones, so
        seasonal forecasters stay phase-aligned across idle gaps) to
        ``policy.observe_window`` *before* this arrival is counted,
        observed, or scaled for.  Only reached when the policy declares
        an observation window — reactive policies never enter here.
        """
        w = fleet.obs_window_s
        index = int(at // w)
        if fleet.window_index is None:
            fleet.window_index = index
        else:
            policy = fleet.policy
            while fleet.window_index < index:
                closed = fleet.window_index
                policy.observe_window(
                    fleet.policy_state,
                    WindowObservation(
                        index=closed,
                        start_s=closed * w,
                        end_s=(closed + 1) * w,
                        arrivals=fleet.window_arrivals,
                    ),
                )
                fleet.window_arrivals = 0
                fleet.window_index = closed + 1
        fleet.window_arrivals += 1

    def _expiry(self, fleet: _Fleet, container: _FleetContainer, now: float) -> float:
        """When this container retires if no further request reaches it.

        Delegated to the fleet's scaling policy (plain keep-alive for
        :class:`~repro.faas.autoscale.PerRequest`; panic windows suspend
        retirement, scale-to-zero grace extends the last container).
        """
        if container.ready_at > now or container.active > 0:
            return math.inf
        return fleet.policy.idle_expiry(
            fleet.policy_state,
            container.idle_since,
            fleet.keep_alive_s,
            fleet.wants_last and self._last_of_fleet(fleet, container, now),
        )

    @staticmethod
    def _last_of_fleet(
        fleet: _Fleet, container: _FleetContainer, now: float
    ) -> bool:
        """Whether retiring ``container`` would scale the fleet to zero.

        True when no other container outlives it under the base
        keep-alive ordering: busy or booting containers always outlive an
        idle one, and idle peers are ordered by ``(idle_since, seq)``.
        """
        for other in fleet.containers:
            if other is container:
                continue
            if other.active > 0 or other.ready_at > now:
                return False
            if (other.idle_since, other.seq) > (
                container.idle_since,
                container.seq,
            ):
                return False
        return True

    def _bookable_capacity(self, fleet: _Fleet, now: float) -> int:
        """Slots the fleet can still book at ``now``: free slots on live
        (ready or booting) containers plus every container the hard cap
        still allows to boot.  The single source of truth for both the
        load-shedder in arrival processing and the router-facing
        :meth:`accepts` — they must never disagree, or routing failover
        would diverge from actual shedding."""
        config = fleet.fleet_config
        alive = spare = 0
        for container in fleet.containers:
            if self._expiry(fleet, container, now) >= now:
                alive += 1
                spare += config.max_concurrency - container.active
        return spare + (config.max_containers - alive) * config.max_concurrency

    def _reap(self, fleet: _Fleet, now: float) -> None:
        """Retire containers whose keep-alive elapsed strictly before now.

        Also refreshes the fleet's expiry hint (``reap_until``): the
        earliest virtual time any container could possibly retire, i.e.
        the min of idle survivors' base expiries and ``now +
        keep_alive_s`` (a container busy or booting now cannot go idle
        before ``now``).  Arrivals before the hint skip this scan.
        """
        keep_alive = fleet.keep_alive_s
        hint = now + keep_alive
        survivors: list[_FleetContainer] = []
        by_seq = fleet.by_seq
        for container in fleet.containers:
            expiry = self._expiry(fleet, container, now)
            if expiry < now:
                self._retire(fleet, container, expiry)
                del by_seq[container.seq]
            else:
                survivors.append(container)
                if container.active == 0 and container.ready_at <= now:
                    base = container.idle_since + keep_alive
                    if base < hint:
                        hint = base
        fleet.containers = survivors
        fleet.reap_until = hint

    def _retire(
        self, fleet: _Fleet, container: _FleetContainer, at: float
    ) -> None:
        lifetime = max(0.0, at - container.spawned_at)
        fleet.retired_container_seconds += lifetime
        fleet.retired_gb_seconds += lifetime * container.memory_mb / 1024.0
        if self._stream is not None:
            self._stream.provision(
                fleet.name,
                container.spawned_at,
                container.spawned_at + lifetime,
                container.memory_mb,
            )
        else:
            fleet.retirements.append((container.container_id, at))

    def _view(self, fleet: _Fleet, now: float) -> FleetView:
        """Refresh the fleet's reusable scale-decision snapshot.

        Only called from :meth:`_scale`, immediately after arrival
        processing reaped (or proved reap-free via the hint), so every
        container in the list is live — no expiry probe needed here.
        The refresh is O(1): the incremental counters
        (``fleet.in_flight``, ``fleet.booting``) plus the container-list
        length determine every dynamic field, because a booting
        container always has ``active == 0`` (see the invariant note in
        :class:`_Fleet`) — so all in-flight work sits on ready
        containers and each booting container contributes exactly
        ``max_concurrency`` free booting slots.  The returned view is
        the fleet's single reused instance; it is only valid until the
        next scale decision.
        """
        mc = fleet.max_concurrency
        live = len(fleet.containers)
        booting = fleet.booting
        in_flight = fleet.in_flight
        booting_slots = booting * mc
        ready_slots = (live - booting) * mc - in_flight
        view = fleet.view
        write = object.__setattr__
        write(view, "now", now)
        write(view, "queued", len(fleet.queue))
        write(view, "in_flight", in_flight)
        write(view, "live_containers", live)
        write(view, "booting_containers", booting)
        write(view, "booting_slots", booting_slots)
        write(view, "ready_slots", ready_slots)
        return view

    def _scale(self, fleet: _Fleet, now: float) -> None:
        """Boot however many containers the fleet's policy asks for."""
        view = self._view(fleet, now)
        want = fleet.policy.scale_out(fleet.policy_state, view)
        allowed = fleet.fleet_config.max_containers - view.live_containers
        booted = max(0, min(want, allowed))
        for _ in range(booted):
            self._spawn(fleet, now)
        # Journal the decision only when the policy actually asked for
        # capacity: a "scale" row per boot request keeps the journal
        # bounded by container churn, not by arrivals, and the cost of
        # the sink is only ever paid on those rare decisions.
        obs = self._obs
        if obs is not None and want > 0:
            obs.scaling_decision(
                now,
                fleet.name,
                fleet.policy.decision(fleet.policy_state, view, want, booted),
            )

    def _spawn(self, fleet: _Fleet, now: float) -> None:
        compiled = fleet.compiled
        scale = fleet.cost_scale
        init_ms = compiled.eager_init_cost_ms * scale + self.config.runtime_init_ms
        if self._jitter_sigma > 0.0:
            # Multiplying by the disabled-jitter factor (exactly 1.0)
            # is a bit-exact no-op, so the jitter-off path skips the
            # call; bit-identity pinned by the golden regression.
            init_ms *= self._fleet_jitter(fleet)
        boot_s = (self.config.cold_platform_ms + init_ms) / 1000.0
        seq = self._next_container_seq
        self._next_container_seq = seq + 1
        container = _FleetContainer(
            container_id=f"{fleet.name}-f{seq}",
            seq=seq,
            spawned_at=now,
            ready_at=now + boot_s,
            init_ms=init_ms,
            loaded=set(compiled.eager_loaded),
            memory_mb=fleet.config.base_memory_mb
            + compiled.eager_memory_kb / 1024.0,
        )
        fleet.containers.append(container)
        fleet.by_seq[seq] = container
        fleet.booting += 1
        fleet.spawned += 1
        fleet.peak_containers = max(fleet.peak_containers, len(fleet.containers))
        self._push(container.ready_at, _READY, (fleet.name, seq))

    def _select(self, fleet: _Fleet, now: float) -> _FleetContainer | None:
        """Pick the serving container: pack the busiest, then most recent.

        Packing in-flight requests onto already-active containers lets idle
        ones age toward keep-alive expiry, the behaviour that makes the
        cold-start-rate-vs-load curve non-trivial.
        """
        best: _FleetContainer | None = None
        for container in fleet.containers:
            if container.ready_at > now:
                continue
            if container.active >= fleet.max_concurrency:
                continue
            if self._expiry(fleet, container, now) < now:
                continue
            if best is None or (container.active, container.last_release, container.seq) > (
                best.active, best.last_release, best.seq
            ):
                best = container
        return best

    def _dispatch(self, fleet: _Fleet, now: float) -> None:
        while fleet.queue:
            container = self._select(fleet, now)
            if container is None:
                return
            request = fleet.queue.popleft()
            self._start_service(
                fleet,
                container,
                request.entry,
                request.arrival,
                now,
                request.token,
                request.qos,
                request.wire_ms,
            )

    def _start_service(
        self,
        fleet: _Fleet,
        container: _FleetContainer,
        entry: str,
        arrival: float,
        now: float,
        token: int,
        qos: str | None = None,
        wire_ms: float = 0.0,
    ) -> None:
        compiled_entry = fleet.entries[entry]
        cold = container.virgin
        container.active += 1
        fleet.in_flight += 1

        lazy_ms = 0.0
        if cold:
            container.virgin = False
            lazy_ms = fleet.compiled.charge_first_use(compiled_entry, container, True)
            container.seen_entries.add(entry)
            fleet.cold_starts += 1
        elif entry not in container.seen_entries:
            lazy_ms = fleet.compiled.charge_first_use(compiled_entry, container, False)
            container.seen_entries.add(entry)

        exec_ms = compiled_entry.total_self_ms * fleet.cost_scale + lazy_ms
        if self._jitter_sigma > 0.0:
            # *1.0 is bit-exact, so the jitter-off replay skips the call.
            exec_ms *= self._fleet_jitter(fleet)
        service_ms = self._warm_ms + exec_ms
        finish = now + service_ms / 1000.0
        queue_ms = (now - arrival) * 1000.0
        stream = self._stream
        if stream is not None:
            # Streaming replay: the completion facts flow to the sink and
            # are gone; the full record object is only built when a tap
            # asked for it.  Retaining records (or the token -> record
            # map) would make memory O(requests), the exact failure mode
            # run_stream exists to fix.  The deadline is end-to-end:
            # forwarding wire time + queueing + service.
            if qos is None:
                stream.complete(arrival, cold, queue_ms, fleet.name)
            else:
                violated, utility = self.qos_classes[qos].completion_value(
                    wire_ms + queue_ms + service_ms
                )
                stream.complete(
                    arrival, cold, queue_ms, fleet.name, qos, violated, utility
                )
            if stream.record is not None:
                stream.record(
                    InvocationRecord(
                        app=fleet.name,
                        entry=entry,
                        timestamp=arrival,
                        cold=cold,
                        init_ms=container.init_ms if cold else 0.0,
                        exec_ms=exec_ms,
                        e2e_ms=queue_ms + service_ms,
                        memory_mb=container.memory_mb,
                        container_id=container.container_id,
                        queue_ms=queue_ms,
                    )
                )
            if stream.span is not None and not token % stream.span_interval:
                # Sampled request tracing: the token is the stream
                # position, so modular sampling picks the same requests
                # on every (resumed) run.  The modulo lives here so an
                # unsampled request never pays a call.
                stream.span(
                    token,
                    fleet.name,
                    entry,
                    arrival,
                    queue_ms,
                    cold,
                    container.init_ms if cold else 0.0,
                    exec_ms,
                    wire_ms,
                )
        else:
            record = InvocationRecord(
                app=fleet.name,
                entry=entry,
                timestamp=arrival,
                cold=cold,
                init_ms=container.init_ms if cold else 0.0,
                exec_ms=exec_ms,
                e2e_ms=queue_ms + service_ms,
                memory_mb=container.memory_mb,
                container_id=container.container_id,
                queue_ms=queue_ms,
            )
            fleet.records.append(record)
            self._finished[token] = record
        seq = self._next_event_seq
        self._next_event_seq = seq + 1
        heappush(self._events, (finish, _COMPLETE, seq, (fleet.name, container.seq, token)))

    def _fleet_jitter(self, fleet: _Fleet) -> float:
        """Per-app latency noise; seeded per app so streams never interleave."""
        sigma = self._jitter_sigma
        if sigma <= 0:
            return 1.0
        rng = fleet.jitter_rng
        if rng is None:
            rng = fleet.jitter_rng = SeededRNG(
                derive_seed(self.seed, "jitter", fleet.name)
            )
        return math.exp(rng.gauss(0.0, sigma))


def replay_cluster_workload(
    platform: ClusterPlatform,
    gateway: Gateway,
    schedule: list[tuple[float, str]],
    app: str,
) -> list[InvocationRecord]:
    """Replay an ``(arrival_s, entry)`` schedule through the gateway.

    Routes each arrival over the conventional ``/<app>/<entry>`` URL (so
    hit counts and the workload monitor observe the traffic), then drains
    the cluster's event loop.  Returns the completed records.
    """
    gateway.submit_schedule(app, schedule)
    return platform.run()
