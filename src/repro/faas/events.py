"""Invocation records and per-application statistics.

Both FaaS back ends emit the same :class:`InvocationRecord`, so the entire
analysis/benchmark stack is agnostic to whether numbers came from real
execution or simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.metrics import LatencySummary, MemorySummary


@dataclass(frozen=True)
class InvocationRecord:
    """One function invocation as observed by the platform."""

    app: str
    entry: str
    timestamp: float  # platform-clock seconds at request arrival
    cold: bool
    init_ms: float  # library + handler initialization (0 for warm starts)
    exec_ms: float  # handler body execution, incl. lazy first-use loading
    e2e_ms: float  # end-to-end latency: platform overhead + init + exec
    memory_mb: float  # container resident memory after the invocation
    container_id: str
    #: Arrival-to-service-start wait.  Always 0 on the single-pool back
    #: ends; the cluster simulator charges boot waits and FIFO queueing
    #: here (its e2e is queue + service).
    queue_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.init_ms < 0 or self.exec_ms < 0 or self.e2e_ms < 0:
            raise ValueError(f"negative latency in record: {self}")
        if self.queue_ms < 0:
            raise ValueError(f"negative queueing delay in record: {self}")
        if not self.cold and self.init_ms != 0:
            raise ValueError("warm start cannot carry init time")


@dataclass(frozen=True)
class InvocationStats:
    """Aggregate view over a set of records (the evaluation's metrics)."""

    app: str
    total: int
    cold_starts: int
    init: LatencySummary  # over cold starts only
    e2e: LatencySummary
    exec: LatencySummary
    memory: MemorySummary
    init_ratio: float  # mean cold-start init : mean cold-start e2e (Fig. 1)

    @classmethod
    def from_records(cls, records: Iterable[InvocationRecord]) -> "InvocationStats":
        data = list(records)
        if not data:
            raise ValueError("cannot compute stats over zero records")
        app = data[0].app
        cold = [record for record in data if record.cold]
        if not cold:
            raise ValueError(f"no cold starts recorded for {app!r}")
        cold_e2e = [record.e2e_ms for record in cold]
        cold_init = [record.init_ms for record in cold]
        return cls(
            app=app,
            total=len(data),
            cold_starts=len(cold),
            init=LatencySummary.from_values(cold_init),
            e2e=LatencySummary.from_values([record.e2e_ms for record in data]),
            exec=LatencySummary.from_values([record.exec_ms for record in data]),
            memory=MemorySummary.from_values([record.memory_mb for record in data]),
            init_ratio=(sum(cold_init) / len(cold_init)) / (sum(cold_e2e) / len(cold_e2e)),
        )


def entry_counts(records: Iterable[InvocationRecord]) -> dict[str, int]:
    """Invocation count per entry point (feeds the adaptive monitor)."""
    counts: dict[str, int] = {}
    for record in records:
        counts[record.entry] = counts.get(record.entry, 0) + 1
    return counts
