"""Event-driven, virtual-time FaaS simulator.

The simulator executes *specifications* instead of code: an application is
a set of globally-imported libraries plus entry-point behaviours (which
library functions each entry calls).  Cold starts pay the import closure of
the handler's global imports; a :class:`~repro.plan.DeferralPlan` removes
deferred modules from that closure and charges them to the first invocation
that actually needs them — byte-for-byte the semantics of the really
executing testbed, but fast enough to replay the paper's 500-cold-start
protocol for all 22 applications in well under a second.

Compiled application state (import closures, entry call graphs, cold-start
lazy-load chains) is memoized per ``(app config, plan)`` in
:func:`compiled_app`, so redeploys and repeated measurement runs never
recompute a >1000-module closure, and the hot invoke path touches only
precomputed tuples.  :mod:`repro.faas.cluster` builds its container fleets
on the same compiled state.

Every invocation optionally records an :class:`ExecutionTrace` (init
segments + call-path segments with self-times) from which
:mod:`repro.core.simprofiler` synthesizes profiler samples deterministically.
"""

from __future__ import annotations

import functools
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import DeploymentError, SpecError
from repro.common.rng import SeededRNG
from repro.faas.events import InvocationRecord
from repro.plan import DeferralPlan
from repro.synthlib.spec import Ecosystem, FunctionRef, ModuleKey


@dataclass(frozen=True)
class EntryBehavior:
    """What one entry point does: which library functions it invokes."""

    name: str
    calls: tuple[str, ...] = ()  # qualified refs, e.g. "sligraph:use_core"
    handler_self_ms: float = 1.0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid entry name: {self.name!r}")
        if self.handler_self_ms < 0:
            raise SpecError(f"negative handler cost for entry {self.name!r}")


@dataclass(frozen=True)
class SimAppConfig:
    """A simulated serverless application."""

    name: str
    ecosystem: Ecosystem
    handler_imports: tuple[str, ...]  # dotted modules the handler imports globally
    entries: tuple[EntryBehavior, ...]
    cost_scale: float = 1.0
    base_memory_mb: float = 38.0
    keep_alive_s: float = 600.0

    def __post_init__(self) -> None:
        if not self.entries:
            raise SpecError(f"app {self.name!r} needs at least one entry point")
        names = [entry.name for entry in self.entries]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate entry names in app {self.name!r}")
        if self.cost_scale <= 0:
            raise SpecError(f"cost scale must be positive: {self.cost_scale}")

    def entry(self, name: str) -> EntryBehavior:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise SpecError(f"app {self.name!r} has no entry {name!r}")


@dataclass(frozen=True)
class SimPlatformConfig:
    """Platform-level cost constants (the Lambda runtime's own overhead)."""

    cold_platform_ms: float = 120.0  # container provisioning / sandbox setup
    runtime_init_ms: float = 35.0  # interpreter boot before user imports
    warm_platform_ms: float = 1.5  # request routing to a warm container
    record_traces: bool = True
    #: Multiplicative log-normal noise on per-invocation init/exec times
    #: (sigma of the underlying gaussian).  0 = exact costs.  A small value
    #: (~0.05) reproduces the latency variance real platforms show, making
    #: 99th-percentile metrics meaningfully different from means.
    jitter_sigma: float = 0.0
    jitter_seed: int = 1234


@dataclass(frozen=True)
class InitSegment:
    """One module's top-level execution during (cold or lazy) loading."""

    module: str  # dotted path
    self_ms: float


@dataclass(frozen=True)
class CallSegment:
    """Self-time of one function at the end of a concrete call path."""

    path: tuple[str, ...]  # handler frame first, e.g. ("app.handler:predict", ...)
    self_ms: float


@dataclass(frozen=True)
class ExecutionTrace:
    """Deterministic record of everything one invocation executed."""

    app: str
    entry: str
    timestamp: float
    cold: bool
    init_segments: tuple[InitSegment, ...]
    lazy_init_segments: tuple[InitSegment, ...]
    call_segments: tuple[CallSegment, ...]


@dataclass
class _SimContainer:
    container_id: str
    loaded: set[ModuleKey]
    memory_mb: float
    free_at: float
    expires_at: float
    seen_entries: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class _LazyChain:
    """One first-use import chain: the modules one missing root pulls in."""

    modules: tuple[ModuleKey, ...]
    segments: tuple[InitSegment, ...]
    init_cost_ms: float  # unscaled
    memory_kb: float


@dataclass(frozen=True)
class _CompiledEntry:
    """Entry behaviour resolved against the ecosystem's call graph."""

    behavior: EntryBehavior
    segments: tuple[CallSegment, ...]  # call paths with *unscaled* self times
    scaled_segments: tuple[CallSegment, ...]  # shared across invocations
    needed_modules: tuple[ModuleKey, ...]  # in first-use order
    total_self_ms: float
    #: Lazy chains this entry triggers on a *freshly cold* container, in
    #: load order.  Empty for entries fully covered by the eager closure,
    #: which lets the hot invoke path skip import-closure work entirely.
    cold_chains: tuple[_LazyChain, ...]


class CompiledApp:
    """Immutable compiled state shared by every deployment of (config, plan).

    Everything here is a pure function of the app configuration and the
    deferral plan: the eager cold-start closure, per-entry call segments,
    and the lazy chains a cold container loads on first use.  Instances are
    memoized by :func:`compiled_app` so redeploys, repeated measurement
    runs, and cluster fleets all share one compilation.
    """

    def __init__(self, config: SimAppConfig, plan: DeferralPlan) -> None:
        self.config = config
        self.plan = plan
        eco = config.ecosystem
        self.deferred_edges: frozenset[ModuleKey] = frozenset(
            eco.parse_module(dotted) for dotted in plan.deferred_library_edges
        )
        roots: list[ModuleKey] = []
        for dotted in config.handler_imports:
            key = eco.parse_module(dotted)
            if dotted in plan.deferred_handler_imports:
                continue
            roots.append(key)
        self.eager_roots = tuple(roots)
        # The cold-start closure is identical for every container of one
        # app version; precompute it once (500-cold-start bursts would
        # otherwise recompute a >1000-module closure per request).
        self.eager_closure = tuple(
            eco.import_closure(self.eager_roots, deferred=self.deferred_edges)
        )
        #: Frozen copy of the closure: cold starts copy this set instead of
        #: rehashing ~1000 ModuleKeys per container (set-from-set copies
        #: reuse cached hashes, the dominant cost of burst measurements).
        self.eager_loaded = frozenset(self.eager_closure)
        self.eager_init_cost_ms = eco.total_init_cost_ms(self.eager_closure)
        self.eager_memory_kb = eco.total_memory_kb(self.eager_closure)
        self.eager_init_segments = tuple(
            InitSegment(module=key.dotted, self_ms=eco.module(key).init_cost_ms)
            for key in self.eager_closure
        )
        self.entries = {
            entry.name: self._compile_entry(entry) for entry in config.entries
        }

    def _compile_entry(self, behavior: EntryBehavior) -> _CompiledEntry:
        eco = self.config.ecosystem
        segments: list[CallSegment] = []
        needed: list[ModuleKey] = []
        seen_modules: set[ModuleKey] = set()
        handler_frame = f"{self.config.name}.handler:{behavior.name}"

        def walk(ref: FunctionRef, path: tuple[str, ...], stack: set[str]) -> None:
            if ref.qualified in stack:
                return  # guard against accidental call cycles in user specs
            function = eco.function(ref)
            full_path = path + (ref.qualified,)
            segments.append(CallSegment(path=full_path, self_ms=function.self_cost_ms))
            if ref.key not in seen_modules:
                seen_modules.add(ref.key)
                needed.append(ref.key)
            for target in eco.call_targets(ref):
                walk(target, full_path, stack | {ref.qualified})

        for call in behavior.calls:
            walk(eco.parse_function(call), (handler_frame,), set())
        total = behavior.handler_self_ms + sum(seg.self_ms for seg in segments)
        scale = self.config.cost_scale
        return _CompiledEntry(
            behavior=behavior,
            segments=tuple(segments),
            scaled_segments=tuple(
                replace(segment, self_ms=segment.self_ms * scale)
                for segment in segments
            ),
            needed_modules=tuple(needed),
            total_self_ms=total,
            cold_chains=self._compile_cold_chains(needed),
        )

    def _compile_cold_chains(
        self, needed: Sequence[ModuleKey]
    ) -> tuple[_LazyChain, ...]:
        eco = self.config.ecosystem
        loaded = set(self.eager_loaded)
        chains: list[_LazyChain] = []
        for key in needed:
            if key in loaded:
                continue
            chain = eco.import_closure(
                [key], deferred=self.deferred_edges, already_loaded=loaded
            )
            chains.append(
                _LazyChain(
                    modules=tuple(chain),
                    segments=tuple(
                        InitSegment(
                            module=loaded_key.dotted,
                            self_ms=eco.module(loaded_key).init_cost_ms,
                        )
                        for loaded_key in chain
                    ),
                    init_cost_ms=eco.total_init_cost_ms(chain),
                    memory_kb=eco.total_memory_kb(chain),
                )
            )
            loaded.update(chain)
        return tuple(chains)

    def charge_first_use(
        self,
        entry: _CompiledEntry,
        container,
        cold: bool,
        segments_out: list[InitSegment] | None = None,
    ) -> float:
        """Charge an entry's first-use (lazy) imports to a container.

        Mutates the container's ``loaded`` set and ``memory_mb`` (both
        simulator back ends' container types carry those fields) and
        returns the cost-scaled lazy init milliseconds.  The cold path
        replays the precomputed chains; the warm path resolves closures
        against whatever this particular container has loaded.  This is
        the single implementation both :class:`SimPlatform` and the
        cluster fleet use, which is what keeps a
        :class:`~repro.plan.DeferralPlan`'s effect bit-identical across
        back ends.
        """
        lazy_ms = 0.0
        scale = self.config.cost_scale
        if cold:
            for chain in entry.cold_chains:
                if segments_out is not None:
                    segments_out.extend(chain.segments)
                lazy_ms += chain.init_cost_ms * scale
                container.loaded.update(chain.modules)
                container.memory_mb += chain.memory_kb / 1024.0
            return lazy_ms
        eco = self.config.ecosystem
        for key in entry.needed_modules:
            if key in container.loaded:
                continue
            chain = eco.import_closure(
                [key], deferred=self.deferred_edges, already_loaded=container.loaded
            )
            if segments_out is not None:
                segments_out.extend(
                    InitSegment(
                        module=loaded_key.dotted,
                        self_ms=eco.module(loaded_key).init_cost_ms,
                    )
                    for loaded_key in chain
                )
            lazy_ms += eco.total_init_cost_ms(chain) * scale
            container.loaded.update(chain)
            container.memory_mb += eco.total_memory_kb(chain) / 1024.0
        return lazy_ms


@functools.lru_cache(maxsize=256)
def compiled_app(config: SimAppConfig, plan: DeferralPlan) -> CompiledApp:
    """Memoized compilation of an application against a deferral plan.

    The cache key is the (hashable, frozen) config/plan pair; ecosystems
    hash by identity, so two structurally equal apps built from distinct
    :class:`Ecosystem` objects compile separately — which is exactly right,
    since specs are mutable through ``Ecosystem.add``.
    """
    return CompiledApp(config, plan)


class _SimApp:
    """Deployed application state: shared compiled state + container pool."""

    def __init__(self, config: SimAppConfig, plan: DeferralPlan) -> None:
        self.config = config
        self.plan = plan
        self.compiled = compiled_app(config, plan)
        self.version = 1
        self.containers: list[_SimContainer] = []
        self.records: list[InvocationRecord] = []
        self.traces: list[ExecutionTrace] = []
        # Conservative lower bounds over the pool; they only ever allow
        # skipping the O(pool) scans in _acquire, never skip a candidate.
        self.pool_min_free_at = math.inf
        self.pool_min_expires_at = math.inf

    # Compiled-state accessors kept on the app for call-site brevity.

    @property
    def entries(self) -> dict[str, _CompiledEntry]:
        return self.compiled.entries

    @property
    def deferred_edges(self) -> frozenset[ModuleKey]:
        return self.compiled.deferred_edges

    @property
    def eager_closure(self) -> tuple[ModuleKey, ...]:
        return self.compiled.eager_closure

    @property
    def eager_init_cost_ms(self) -> float:
        return self.compiled.eager_init_cost_ms

    @property
    def eager_memory_kb(self) -> float:
        return self.compiled.eager_memory_kb

    @property
    def eager_init_segments(self) -> tuple[InitSegment, ...]:
        return self.compiled.eager_init_segments


class SimPlatform:
    """Virtual-time serverless platform."""

    def __init__(
        self,
        config: SimPlatformConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or SimPlatformConfig()
        self.clock = clock or VirtualClock()
        self._apps: dict[str, _SimApp] = {}
        self._container_ids = itertools.count(1)
        self._jitter_rng = SeededRNG(self.config.jitter_seed)

    def _jitter(self) -> float:
        """Deterministic per-invocation latency noise factor (mean ~1)."""
        sigma = self.config.jitter_sigma
        if sigma <= 0:
            return 1.0
        return math.exp(self._jitter_rng.gauss(0.0, sigma))

    # -- deployment --------------------------------------------------------

    def deploy(self, config: SimAppConfig, plan: DeferralPlan | None = None) -> str:
        """Deploy an application (optionally pre-optimized with ``plan``)."""
        if config.name in self._apps:
            raise DeploymentError(f"app already deployed: {config.name!r}")
        self._apps[config.name] = _SimApp(
            config, plan or DeferralPlan.empty(config.name)
        )
        return config.name

    def redeploy(self, name: str, plan: DeferralPlan) -> None:
        """Apply an optimization plan; kills warm containers (new version)."""
        app = self._app(name)
        if plan.app != name:
            raise DeploymentError(f"plan is for {plan.app!r}, not {name!r}")
        version = app.version
        records, traces = app.records, app.traces
        fresh = _SimApp(app.config, plan)
        fresh.version = version + 1
        fresh.records, fresh.traces = records, traces
        self._apps[name] = fresh

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def plan_for(self, name: str) -> DeferralPlan:
        return self._app(name).plan

    def _app(self, name: str) -> _SimApp:
        try:
            return self._apps[name]
        except KeyError:
            raise DeploymentError(f"unknown app: {name!r}") from None

    # -- invocation --------------------------------------------------------

    def invoke(
        self, name: str, entry: str, at: float | None = None
    ) -> InvocationRecord:
        """Route one request; cold-starts a container when none is warm.

        With ``at=None`` the call is *synchronous*: the request arrives now
        and the virtual clock advances past its completion, so back-to-back
        calls reuse the warm container like a sequential client would.  An
        explicit ``at`` injects an asynchronous arrival (burst/trace replay)
        and leaves the clock at the arrival time, so simultaneous requests
        contend for containers — that is how the paper's "500 concurrent
        requests" produce 500 cold starts.
        """
        app = self._app(name)
        now = self.clock.now()
        arrival = now if at is None else at
        if arrival < now:
            raise DeploymentError(f"arrival {arrival} is in the past (now={now})")
        if isinstance(self.clock, VirtualClock) and arrival > now:
            self.clock.advance_to(arrival)
        compiled = app.entries.get(entry)
        if compiled is None:
            raise DeploymentError(f"app {name!r} has no entry {entry!r}")
        container = self._acquire(app, arrival)
        record = self._execute(app, compiled, container, arrival)
        if at is None and isinstance(self.clock, VirtualClock):
            self.clock.advance_to(arrival + record.e2e_ms / 1000.0)
        return record

    def invoke_burst(
        self, name: str, entries: Sequence[str], at: float | None = None
    ) -> list[InvocationRecord]:
        """N simultaneous requests (the paper's '500 concurrent' protocol)."""
        arrival = self.clock.now() if at is None else at
        return [self.invoke(name, entry, at=arrival) for entry in entries]

    def reset_pool(self, name: str) -> None:
        """Drop every container of an app (forces the next start cold)."""
        app = self._app(name)
        app.containers.clear()
        app.pool_min_free_at = math.inf
        app.pool_min_expires_at = math.inf

    def records(self, name: str) -> list[InvocationRecord]:
        return list(self._app(name).records)

    def traces(self, name: str) -> list[ExecutionTrace]:
        return list(self._app(name).traces)

    def clear_history(self, name: str) -> None:
        app = self._app(name)
        app.records.clear()
        app.traces.clear()

    # -- internals ----------------------------------------------------------

    def _acquire(self, app: _SimApp, arrival: float) -> _SimContainer | None:
        """Return a warm idle container, or ``None`` to signal a cold start."""
        if app.pool_min_expires_at >= arrival and app.pool_min_free_at > arrival:
            # Nothing expired and nothing idle: skip the pool scans.  This
            # is the common case of an all-cold measurement burst, where
            # scanning would make the 500-request protocol O(pool²).
            return None
        app.containers = [
            container
            for container in app.containers
            if container.expires_at >= arrival
        ]
        candidates = [
            container for container in app.containers if container.free_at <= arrival
        ]
        app.pool_min_expires_at = min(
            (container.expires_at for container in app.containers), default=math.inf
        )
        if not candidates:
            app.pool_min_free_at = min(
                (container.free_at for container in app.containers),
                default=math.inf,
            )
            return None
        # Lambda-like most-recently-used reuse keeps the pool small.
        return max(candidates, key=lambda container: container.free_at)

    def _execute(
        self,
        app: _SimApp,
        compiled: _CompiledEntry,
        container: _SimContainer | None,
        arrival: float,
    ) -> InvocationRecord:
        scale = app.config.cost_scale
        cold = container is None
        init_segments: tuple[InitSegment, ...] = ()
        init_ms = 0.0
        if cold:
            init_segments = app.eager_init_segments
            init_ms = (
                app.eager_init_cost_ms * scale + self.config.runtime_init_ms
            ) * self._jitter()
            container = _SimContainer(
                container_id=f"{app.config.name}-c{next(self._container_ids)}",
                loaded=set(app.compiled.eager_loaded),
                memory_mb=app.config.base_memory_mb
                + app.eager_memory_kb / 1024.0,
                free_at=arrival,
                expires_at=arrival + app.config.keep_alive_s,
            )
            app.containers.append(container)

        # First-use (lazy) loading: any module the entry needs that is not
        # loaded in this container is imported now, on the critical path of
        # this request — the cost lazy loading trades cold-start time for.
        lazy_segments: list[InitSegment] = []
        lazy_ms = 0.0
        if cold or compiled.behavior.name not in container.seen_entries:
            lazy_ms = app.compiled.charge_first_use(
                compiled, container, cold, segments_out=lazy_segments
            )
        container.seen_entries.add(compiled.behavior.name)

        exec_ms = (compiled.total_self_ms * scale + lazy_ms) * self._jitter()
        platform_ms = (
            self.config.cold_platform_ms if cold else self.config.warm_platform_ms
        )
        e2e_ms = platform_ms + init_ms + exec_ms
        container.free_at = arrival + e2e_ms / 1000.0
        container.expires_at = container.free_at + app.config.keep_alive_s
        app.pool_min_free_at = min(app.pool_min_free_at, container.free_at)
        app.pool_min_expires_at = min(
            app.pool_min_expires_at, container.expires_at
        )

        record = InvocationRecord(
            app=app.config.name,
            entry=compiled.behavior.name,
            timestamp=arrival,
            cold=cold,
            init_ms=init_ms,
            exec_ms=exec_ms,
            e2e_ms=e2e_ms,
            memory_mb=container.memory_mb,
            container_id=container.container_id,
        )
        app.records.append(record)
        if self.config.record_traces:
            app.traces.append(
                ExecutionTrace(
                    app=app.config.name,
                    entry=compiled.behavior.name,
                    timestamp=arrival,
                    cold=cold,
                    init_segments=init_segments,
                    lazy_init_segments=tuple(lazy_segments),
                    call_segments=compiled.scaled_segments,
                )
            )
        return record


def replay_workload(
    platform: SimPlatform,
    app: str,
    arrivals: Iterable[tuple[float, str]],
) -> list[InvocationRecord]:
    """Replay ``(arrival_time_s, entry)`` pairs; returns the new records."""
    produced = []
    for arrival, entry in arrivals:
        produced.append(platform.invoke(app, entry, at=arrival))
    return produced
