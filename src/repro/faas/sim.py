"""Event-driven, virtual-time FaaS simulator.

The simulator executes *specifications* instead of code: an application is
a set of globally-imported libraries plus entry-point behaviours (which
library functions each entry calls).  Cold starts pay the import closure of
the handler's global imports; a :class:`~repro.plan.DeferralPlan` removes
deferred modules from that closure and charges them to the first invocation
that actually needs them — byte-for-byte the semantics of the really
executing testbed, but fast enough to replay the paper's 500-cold-start
protocol for all 22 applications in well under a second.

Every invocation optionally records an :class:`ExecutionTrace` (init
segments + call-path segments with self-times) from which
:mod:`repro.core.simprofiler` synthesizes profiler samples deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import DeploymentError, SpecError
from repro.common.rng import SeededRNG
from repro.faas.events import InvocationRecord
from repro.plan import DeferralPlan
from repro.synthlib.spec import Ecosystem, FunctionRef, ModuleKey


@dataclass(frozen=True)
class EntryBehavior:
    """What one entry point does: which library functions it invokes."""

    name: str
    calls: tuple[str, ...] = ()  # qualified refs, e.g. "sligraph:use_core"
    handler_self_ms: float = 1.0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid entry name: {self.name!r}")
        if self.handler_self_ms < 0:
            raise SpecError(f"negative handler cost for entry {self.name!r}")


@dataclass(frozen=True)
class SimAppConfig:
    """A simulated serverless application."""

    name: str
    ecosystem: Ecosystem
    handler_imports: tuple[str, ...]  # dotted modules the handler imports globally
    entries: tuple[EntryBehavior, ...]
    cost_scale: float = 1.0
    base_memory_mb: float = 38.0
    keep_alive_s: float = 600.0

    def __post_init__(self) -> None:
        if not self.entries:
            raise SpecError(f"app {self.name!r} needs at least one entry point")
        names = [entry.name for entry in self.entries]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate entry names in app {self.name!r}")
        if self.cost_scale <= 0:
            raise SpecError(f"cost scale must be positive: {self.cost_scale}")

    def entry(self, name: str) -> EntryBehavior:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise SpecError(f"app {self.name!r} has no entry {name!r}")


@dataclass(frozen=True)
class SimPlatformConfig:
    """Platform-level cost constants (the Lambda runtime's own overhead)."""

    cold_platform_ms: float = 120.0  # container provisioning / sandbox setup
    runtime_init_ms: float = 35.0  # interpreter boot before user imports
    warm_platform_ms: float = 1.5  # request routing to a warm container
    record_traces: bool = True
    #: Multiplicative log-normal noise on per-invocation init/exec times
    #: (sigma of the underlying gaussian).  0 = exact costs.  A small value
    #: (~0.05) reproduces the latency variance real platforms show, making
    #: 99th-percentile metrics meaningfully different from means.
    jitter_sigma: float = 0.0
    jitter_seed: int = 1234


@dataclass(frozen=True)
class InitSegment:
    """One module's top-level execution during (cold or lazy) loading."""

    module: str  # dotted path
    self_ms: float


@dataclass(frozen=True)
class CallSegment:
    """Self-time of one function at the end of a concrete call path."""

    path: tuple[str, ...]  # handler frame first, e.g. ("app.handler:predict", ...)
    self_ms: float


@dataclass(frozen=True)
class ExecutionTrace:
    """Deterministic record of everything one invocation executed."""

    app: str
    entry: str
    timestamp: float
    cold: bool
    init_segments: tuple[InitSegment, ...]
    lazy_init_segments: tuple[InitSegment, ...]
    call_segments: tuple[CallSegment, ...]


@dataclass
class _SimContainer:
    container_id: str
    loaded: set[ModuleKey]
    memory_mb: float
    free_at: float
    expires_at: float


@dataclass
class _CompiledEntry:
    """Entry behaviour resolved against the ecosystem's call graph."""

    behavior: EntryBehavior
    segments: list[CallSegment]  # call paths with *unscaled* self times
    scaled_segments: tuple[CallSegment, ...]  # shared across invocations
    needed_modules: list[ModuleKey]  # in first-use order
    total_self_ms: float


class _SimApp:
    """Deployed application state: compiled entries + container pool."""

    def __init__(self, config: SimAppConfig, plan: DeferralPlan) -> None:
        self.config = config
        self.plan = plan
        self.version = 1
        self.containers: list[_SimContainer] = []
        self.records: list[InvocationRecord] = []
        self.traces: list[ExecutionTrace] = []
        self._compile()

    # -- plan resolution ---------------------------------------------------

    def _compile(self) -> None:
        eco = self.config.ecosystem
        self.deferred_edges: frozenset[ModuleKey] = frozenset(
            eco.parse_module(dotted) for dotted in self.plan.deferred_library_edges
        )
        roots: list[ModuleKey] = []
        for dotted in self.config.handler_imports:
            key = eco.parse_module(dotted)
            if dotted in self.plan.deferred_handler_imports:
                continue
            roots.append(key)
        self.eager_roots = tuple(roots)
        # The cold-start closure is identical for every container of one
        # app version; precompute it once (500-cold-start bursts would
        # otherwise recompute a >1000-module closure per request).
        self.eager_closure = tuple(
            eco.import_closure(self.eager_roots, deferred=self.deferred_edges)
        )
        self.eager_init_cost_ms = eco.total_init_cost_ms(self.eager_closure)
        self.eager_memory_kb = eco.total_memory_kb(self.eager_closure)
        self.eager_init_segments = tuple(
            InitSegment(module=key.dotted, self_ms=eco.module(key).init_cost_ms)
            for key in self.eager_closure
        )
        self.entries = {
            entry.name: self._compile_entry(entry) for entry in self.config.entries
        }

    def _compile_entry(self, behavior: EntryBehavior) -> _CompiledEntry:
        eco = self.config.ecosystem
        segments: list[CallSegment] = []
        needed: list[ModuleKey] = []
        seen_modules: set[ModuleKey] = set()
        handler_frame = f"{self.config.name}.handler:{behavior.name}"

        def walk(ref: FunctionRef, path: tuple[str, ...], stack: set[str]) -> None:
            if ref.qualified in stack:
                return  # guard against accidental call cycles in user specs
            function = eco.function(ref)
            full_path = path + (ref.qualified,)
            segments.append(CallSegment(path=full_path, self_ms=function.self_cost_ms))
            if ref.key not in seen_modules:
                seen_modules.add(ref.key)
                needed.append(ref.key)
            for target in eco.call_targets(ref):
                walk(target, full_path, stack | {ref.qualified})

        for call in behavior.calls:
            walk(eco.parse_function(call), (handler_frame,), set())
        total = behavior.handler_self_ms + sum(seg.self_ms for seg in segments)
        scale = self.config.cost_scale
        return _CompiledEntry(
            behavior=behavior,
            segments=segments,
            scaled_segments=tuple(
                replace(segment, self_ms=segment.self_ms * scale)
                for segment in segments
            ),
            needed_modules=needed,
            total_self_ms=total,
        )


class SimPlatform:
    """Virtual-time serverless platform."""

    def __init__(
        self,
        config: SimPlatformConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or SimPlatformConfig()
        self.clock = clock or VirtualClock()
        self._apps: dict[str, _SimApp] = {}
        self._container_ids = itertools.count(1)
        self._jitter_rng = SeededRNG(self.config.jitter_seed)

    def _jitter(self) -> float:
        """Deterministic per-invocation latency noise factor (mean ~1)."""
        sigma = self.config.jitter_sigma
        if sigma <= 0:
            return 1.0
        import math

        return math.exp(self._jitter_rng.gauss(0.0, sigma))

    # -- deployment --------------------------------------------------------

    def deploy(self, config: SimAppConfig, plan: DeferralPlan | None = None) -> str:
        """Deploy an application (optionally pre-optimized with ``plan``)."""
        if config.name in self._apps:
            raise DeploymentError(f"app already deployed: {config.name!r}")
        self._apps[config.name] = _SimApp(
            config, plan or DeferralPlan.empty(config.name)
        )
        return config.name

    def redeploy(self, name: str, plan: DeferralPlan) -> None:
        """Apply an optimization plan; kills warm containers (new version)."""
        app = self._app(name)
        if plan.app != name:
            raise DeploymentError(f"plan is for {plan.app!r}, not {name!r}")
        version = app.version
        records, traces = app.records, app.traces
        fresh = _SimApp(app.config, plan)
        fresh.version = version + 1
        fresh.records, fresh.traces = records, traces
        self._apps[name] = fresh

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def plan_for(self, name: str) -> DeferralPlan:
        return self._app(name).plan

    def _app(self, name: str) -> _SimApp:
        try:
            return self._apps[name]
        except KeyError:
            raise DeploymentError(f"unknown app: {name!r}") from None

    # -- invocation --------------------------------------------------------

    def invoke(
        self, name: str, entry: str, at: float | None = None
    ) -> InvocationRecord:
        """Route one request; cold-starts a container when none is warm.

        With ``at=None`` the call is *synchronous*: the request arrives now
        and the virtual clock advances past its completion, so back-to-back
        calls reuse the warm container like a sequential client would.  An
        explicit ``at`` injects an asynchronous arrival (burst/trace replay)
        and leaves the clock at the arrival time, so simultaneous requests
        contend for containers — that is how the paper's "500 concurrent
        requests" produce 500 cold starts.
        """
        app = self._app(name)
        now = self.clock.now()
        arrival = now if at is None else at
        if arrival < now:
            raise DeploymentError(f"arrival {arrival} is in the past (now={now})")
        if isinstance(self.clock, VirtualClock) and arrival > now:
            self.clock.advance_to(arrival)
        compiled = app.entries.get(entry)
        if compiled is None:
            raise DeploymentError(f"app {name!r} has no entry {entry!r}")
        container = self._acquire(app, arrival)
        record = self._execute(app, compiled, container, arrival)
        if at is None and isinstance(self.clock, VirtualClock):
            self.clock.advance_to(arrival + record.e2e_ms / 1000.0)
        return record

    def invoke_burst(
        self, name: str, entries: Sequence[str], at: float | None = None
    ) -> list[InvocationRecord]:
        """N simultaneous requests (the paper's '500 concurrent' protocol)."""
        arrival = self.clock.now() if at is None else at
        return [self.invoke(name, entry, at=arrival) for entry in entries]

    def reset_pool(self, name: str) -> None:
        """Drop every container of an app (forces the next start cold)."""
        self._app(name).containers.clear()

    def records(self, name: str) -> list[InvocationRecord]:
        return list(self._app(name).records)

    def traces(self, name: str) -> list[ExecutionTrace]:
        return list(self._app(name).traces)

    def clear_history(self, name: str) -> None:
        app = self._app(name)
        app.records.clear()
        app.traces.clear()

    # -- internals ----------------------------------------------------------

    def _acquire(self, app: _SimApp, arrival: float) -> _SimContainer | None:
        """Return a warm idle container, or ``None`` to signal a cold start."""
        app.containers = [
            container
            for container in app.containers
            if container.expires_at >= arrival
        ]
        candidates = [
            container for container in app.containers if container.free_at <= arrival
        ]
        if not candidates:
            return None
        # Lambda-like most-recently-used reuse keeps the pool small.
        return max(candidates, key=lambda container: container.free_at)

    def _execute(
        self,
        app: _SimApp,
        compiled: _CompiledEntry,
        container: _SimContainer | None,
        arrival: float,
    ) -> InvocationRecord:
        eco = app.config.ecosystem
        scale = app.config.cost_scale
        cold = container is None
        init_segments: tuple[InitSegment, ...] = ()
        init_ms = 0.0
        if cold:
            init_segments = app.eager_init_segments
            init_ms = (
                app.eager_init_cost_ms * scale + self.config.runtime_init_ms
            ) * self._jitter()
            container = _SimContainer(
                container_id=f"{app.config.name}-c{next(self._container_ids)}",
                loaded=set(app.eager_closure),
                memory_mb=app.config.base_memory_mb
                + app.eager_memory_kb / 1024.0,
                free_at=arrival,
                expires_at=arrival + app.config.keep_alive_s,
            )
            app.containers.append(container)

        # First-use (lazy) loading: any module the entry needs that is not
        # loaded in this container is imported now, on the critical path of
        # this request — the cost lazy loading trades cold-start time for.
        lazy_segments: list[InitSegment] = []
        lazy_ms = 0.0
        for key in compiled.needed_modules:
            if key in container.loaded:
                continue
            chain = eco.import_closure(
                [key], deferred=app.deferred_edges, already_loaded=container.loaded
            )
            for loaded_key in chain:
                lazy_segments.append(
                    InitSegment(
                        module=loaded_key.dotted,
                        self_ms=eco.module(loaded_key).init_cost_ms,
                    )
                )
            lazy_ms += eco.total_init_cost_ms(chain) * scale
            container.loaded.update(chain)
            container.memory_mb += eco.total_memory_kb(chain) / 1024.0

        exec_ms = (compiled.total_self_ms * scale + lazy_ms) * self._jitter()
        platform_ms = (
            self.config.cold_platform_ms if cold else self.config.warm_platform_ms
        )
        e2e_ms = platform_ms + init_ms + exec_ms
        container.free_at = arrival + e2e_ms / 1000.0
        container.expires_at = container.free_at + app.config.keep_alive_s

        record = InvocationRecord(
            app=app.config.name,
            entry=compiled.behavior.name,
            timestamp=arrival,
            cold=cold,
            init_ms=init_ms,
            exec_ms=exec_ms,
            e2e_ms=e2e_ms,
            memory_mb=container.memory_mb,
            container_id=container.container_id,
        )
        app.records.append(record)
        if self.config.record_traces:
            app.traces.append(
                ExecutionTrace(
                    app=app.config.name,
                    entry=compiled.behavior.name,
                    timestamp=arrival,
                    cold=cold,
                    init_segments=init_segments,
                    lazy_init_segments=tuple(lazy_segments),
                    call_segments=compiled.scaled_segments,
                )
            )
        return record


def replay_workload(
    platform: SimPlatform,
    app: str,
    arrivals: Iterable[tuple[float, str]],
) -> list[InvocationRecord]:
    """Replay ``(arrival_time_s, entry)`` pairs; returns the new records."""
    produced = []
    for arrival, entry in arrivals:
        produced.append(platform.invoke(app, entry, at=arrival))
    return produced
