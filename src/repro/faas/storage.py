"""Emulated cloud object storage (the S3/DynamoDB role in Fig. 7).

SLIMSTART's profiler buffers samples locally and batch-transfers them
asynchronously to external storage, where a background analyzer merges
them.  This emulation provides exactly the semantics that pipeline needs —
durable puts, prefix listing, read-back — plus simple operation accounting
so tests can assert the batching actually reduced transfer counts.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.errors import StorageError


class CloudStorage:
    """In-memory key-value store with S3-like prefix listing.

    Thread-safe: the asynchronous uploader in
    :class:`repro.core.collector.ProfileCollector` writes from a background
    thread while the analyzer reads from the main thread.
    """

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}
        self._lock = threading.Lock()
        self.put_count = 0
        self.get_count = 0

    def put(self, key: str, value: Any) -> None:
        if not key:
            raise StorageError("storage key may not be empty")
        with self._lock:
            self._objects[key] = value
            self.put_count += 1

    def get(self, key: str) -> Any:
        with self._lock:
            self.get_count += 1
            try:
                return self._objects[key]
            except KeyError:
                raise StorageError(f"no such object: {key!r}") from None

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(key for key in self._objects if key.startswith(prefix))

    def delete(self, key: str) -> None:
        with self._lock:
            if key not in self._objects:
                raise StorageError(f"no such object: {key!r}")
            del self._objects[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)
