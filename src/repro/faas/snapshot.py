"""Checkpoint/resume for streaming replays: serialize the simulator frontier.

A multi-week production replay is hours of wall time even at the event
loop's optimized throughput; losing it to a crash (or wanting to shard it
across machines over time) calls for durable checkpoints.  This module
serializes everything a mid-stream :class:`~repro.faas.cluster.ClusterPlatform`
needs to continue *bit-identically* — as a JSON-safe dict, so checkpoints
survive process boundaries and interpreter restarts:

* **Fleet state** — every live container (boot/ready times, in-flight
  count, loaded-module closure by dotted name, memory, idle bookkeeping),
  the FIFO queue, the aggregate counters, and the scaling policy's
  per-fleet mutable state (via
  :meth:`~repro.faas.autoscale.ScalingPolicy.export_state`).
* **Event-heap frontier** — the pending ``READY``/``COMPLETE``/``ARRIVAL``
  events.  The heap never holds more than the causal frontier during a
  streamed replay, so this stays small no matter how long the replay ran.
* **RNG state** — each fleet's jitter generator, so latency noise resumes
  mid-stream instead of replaying from the seed.
* **Accumulator state** — the per-window counters, histograms, and
  per-source float partials of the
  :class:`~repro.metrics.WindowAccumulator`.

Floats round-trip through JSON losslessly (shortest-repr), so a resumed
replay's final :class:`~repro.metrics.WindowedSummary` equals an
uninterrupted run's bit for bit (pinned by ``tests/faas/test_snapshot.py``).

The arrival *stream* itself is not serialized — compiled traces are lazy
generators.  Instead :func:`run_stream_checkpointed` records how many
arrivals were consumed; on resume the caller passes a freshly compiled
(deterministic) stream and the driver skips that many events.  Checkpoints
are written at window boundaries, where they cost one JSON dump per
simulated window.

Sharded replays checkpoint **per shard**: each worker writes its own
checkpoint file (``<path>.shard-K-of-N.json``, via the same
:func:`write_checkpoint`) and a coordinator *manifest* at ``<path>``
records the worker count, the app → shard partition, and the shared
replay fingerprint (:func:`write_manifest`/:func:`load_manifest`).  The
driver side lives in :func:`repro.workloads.shard.run_sharded_checkpointed`.
All writes are atomic (scratch + fsync + rename, per-process-unique
scratch names) and every inconsistency — truncated JSON, a crashed
writer's leftover scratch, a manifest whose shard files are missing, a
mismatched worker count — raises :class:`~repro.common.errors.CheckpointError`
instead of silently blending or restarting a replay.
"""

from __future__ import annotations

import json
import math
import os
from itertools import islice
from pathlib import Path
from typing import Callable, Iterable

from repro.common.errors import CheckpointError, DeploymentError, WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.faas.cluster import ClusterPlatform, _FleetContainer
from repro.faas.events import InvocationRecord
from repro.metrics import PricingModel, WindowAccumulator, WindowedSummary
from repro.metrics.windows import _Window

#: Bumped whenever the checkpoint layout changes incompatibly.
#: 2: queue entries carry QoS class + wire latency; accumulator windows
#: carry per-class counters and utility sums.
#: 3: fleets carry observation-window counters (window_index /
#: window_arrivals) feeding ScalingPolicy.observe_window.
CHECKPOINT_FORMAT = 3

#: Bumped whenever the shard-manifest layout changes incompatibly.
MANIFEST_FORMAT = 1

#: Discriminator field value for shard manifests, so a manifest handed to
#: :func:`load_checkpoint` (or a checkpoint handed to
#: :func:`load_manifest`) fails with a targeted message instead of a
#: confusing format error.
MANIFEST_KIND = "shard-manifest"


# -- RNG state ---------------------------------------------------------------


def _rng_state(rng: SeededRNG | None) -> list | None:
    if rng is None:
        return None
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _restore_rng(seed: int, name: str, data: list | None) -> SeededRNG | None:
    if data is None:
        return None
    rng = SeededRNG(derive_seed(seed, "jitter", name))
    version, internal, gauss_next = data
    rng.setstate((version, tuple(internal), gauss_next))
    return rng


# -- platform state ----------------------------------------------------------


def platform_state(platform: ClusterPlatform) -> dict:
    """Serialize a cluster's runtime state as a JSON-safe dict.

    Captures replay state only: per-record batch history
    (``records()``/``retirements()``) and synchronous bookkeeping are
    deliberately excluded — snapshots are taken mid-stream, where both
    are empty.  Raises :class:`WorkloadError` when that precondition does
    not hold (drain with ``run()`` first).
    """
    if platform._finished or platform._dropped:
        raise WorkloadError(
            "cannot snapshot a platform with unconsumed synchronous results; "
            "drain with run() first"
        )
    if platform.clock.pending_events:
        raise WorkloadError("cannot snapshot a clock with scheduled callbacks")
    fleets: dict[str, dict] = {}
    for name, fleet in platform._fleets.items():
        if fleet.records or fleet.retirements:
            raise WorkloadError(
                f"cannot snapshot fleet {name!r} with batch history; "
                "clear_history() first (streamed replays never hit this)"
            )
        fleets[name] = {
            "arrivals": fleet.arrivals,
            "rejected": fleet.rejected,
            "cold_starts": fleet.cold_starts,
            "spawned": fleet.spawned,
            "peak_containers": fleet.peak_containers,
            "retired_container_seconds": fleet.retired_container_seconds,
            "retired_gb_seconds": fleet.retired_gb_seconds,
            "first_arrival": fleet.first_arrival,
            "last_arrival": fleet.last_arrival,
            "reap_until": (
                None if math.isinf(fleet.reap_until) else fleet.reap_until
            ),
            "queue": [
                [
                    request.token,
                    request.entry,
                    request.arrival,
                    request.qos,
                    request.wire_ms,
                ]
                for request in fleet.queue
            ],
            "containers": [
                {
                    "container_id": container.container_id,
                    "seq": container.seq,
                    "spawned_at": container.spawned_at,
                    "ready_at": container.ready_at,
                    "init_ms": container.init_ms,
                    "loaded": sorted(key.dotted for key in container.loaded),
                    "memory_mb": container.memory_mb,
                    "seen_entries": sorted(container.seen_entries),
                    "active": container.active,
                    "virgin": container.virgin,
                    "idle_since": container.idle_since,
                    "last_release": container.last_release,
                }
                for container in fleet.containers
            ],
            "policy_state": fleet.policy.export_state(fleet.policy_state),
            "window_index": fleet.window_index,
            "window_arrivals": fleet.window_arrivals,
            "jitter_rng": _rng_state(fleet.jitter_rng),
        }
    return {
        "clock_s": platform.clock.now(),
        "last_arrival": platform._last_arrival,
        "next_container_seq": platform._next_container_seq,
        "next_event_seq": platform._next_event_seq,
        "next_token": platform._next_token,
        "events": [
            [at, kind, seq, list(payload)] for at, kind, seq, payload in platform._events
        ],
        "fleets": fleets,
    }


def restore_platform(platform: ClusterPlatform, state: dict) -> None:
    """Restore :func:`platform_state` output onto a freshly deployed cluster.

    ``platform`` must already carry the same deployments (apps, plans,
    fleet configs, platform config, seed) the snapshot was taken under —
    the snapshot holds runtime state, not specifications.  App-name
    mismatches raise :class:`DeploymentError`; spec divergence beyond the
    names is the caller's contract, exactly like handing ``run_stream`` a
    different trace.
    """
    if set(state["fleets"]) != set(platform._fleets):
        raise DeploymentError(
            f"snapshot covers apps {sorted(state['fleets'])}, platform has "
            f"{platform.app_names()}"
        )
    from repro.faas.cluster import _PendingRequest  # cycle-free local import

    platform.clock.advance_to(state["clock_s"])
    platform._last_arrival = state["last_arrival"]
    platform._next_container_seq = state["next_container_seq"]
    platform._next_event_seq = state["next_event_seq"]
    platform._next_token = state["next_token"]
    platform._events = [
        (at, kind, seq, tuple(payload))
        for at, kind, seq, payload in state["events"]
    ]
    platform._events.sort()  # heap invariant (serialized order is the heap's)
    for name, data in state["fleets"].items():
        fleet = platform._fleets[name]
        ecosystem = fleet.config.ecosystem
        fleet.arrivals = data["arrivals"]
        fleet.rejected = data["rejected"]
        fleet.cold_starts = data["cold_starts"]
        fleet.spawned = data["spawned"]
        fleet.peak_containers = data["peak_containers"]
        fleet.retired_container_seconds = data["retired_container_seconds"]
        fleet.retired_gb_seconds = data["retired_gb_seconds"]
        fleet.first_arrival = data["first_arrival"]
        fleet.last_arrival = data["last_arrival"]
        fleet.reap_until = (
            -math.inf if data["reap_until"] is None else data["reap_until"]
        )
        fleet.queue.clear()
        for token, entry, arrival, qos, wire_ms in data["queue"]:
            fleet.queue.append(
                _PendingRequest(
                    token=token,
                    entry=entry,
                    arrival=arrival,
                    qos=qos,
                    wire_ms=wire_ms,
                )
            )
        fleet.containers = [
            _FleetContainer(
                container_id=item["container_id"],
                seq=item["seq"],
                spawned_at=item["spawned_at"],
                ready_at=item["ready_at"],
                init_ms=item["init_ms"],
                loaded={ecosystem.parse_module(dotted) for dotted in item["loaded"]},
                memory_mb=item["memory_mb"],
                seen_entries=set(item["seen_entries"]),
                active=item["active"],
                virgin=item["virgin"],
                idle_since=item["idle_since"],
                last_release=item["last_release"],
            )
            for item in data["containers"]
        ]
        fleet.by_seq = {container.seq: container for container in fleet.containers}
        # Recompute the incremental counters the O(1) FleetView refresh
        # reads (see ClusterPlatform._view).  Exact: every pending heap
        # event has time > clock_s (the stream drained to the last
        # arrival before the checkpoint), so a container is booting iff
        # its ready_at is still in the future at the restored clock.
        clock_s = state["clock_s"]
        fleet.in_flight = sum(c.active for c in fleet.containers)
        fleet.booting = sum(1 for c in fleet.containers if c.ready_at > clock_s)
        fleet.policy_state = fleet.policy.restore_state(data["policy_state"])
        fleet.window_index = data["window_index"]
        fleet.window_arrivals = data["window_arrivals"]
        fleet.jitter_rng = _restore_rng(platform.seed, name, data["jitter_rng"])


# -- accumulator state -------------------------------------------------------


def accumulator_state(accumulator: WindowAccumulator) -> dict:
    """Serialize a window accumulator's per-window state."""
    return {
        "window_s": accumulator.window_s,
        "pricing": {
            "per_gb_second": accumulator.pricing.per_gb_second,
            "per_million_requests": accumulator.pricing.per_million_requests,
            "cold_start_surcharge": accumulator.pricing.cold_start_surcharge,
        },
        "windows": {
            str(index): {
                "arrivals": window.arrivals,
                "completed": window.completed,
                "shed": window.shed,
                "cold": window.cold,
                "boots": window.boots,
                "queue_counts": list(window.queue.counts),
                "queue_total": window.queue.total,
                "queue_sums": dict(window.queue_sums),
                "source_counts": {
                    source: list(counts)
                    for source, counts in window.source_counts.items()
                },
                "gb_sums": dict(window.gb_sums),
                "qos_counts": {
                    name: list(counters)
                    for name, counters in window.qos_counts.items()
                },
                "qos_sums": {
                    name: dict(sums)
                    for name, sums in window.qos_sums.items()
                },
            }
            for index, window in accumulator._windows.items()
        },
    }


def _at(path: str | Path | None) -> str:
    """`` at <path>`` when a file is known — every resume-validation
    error names its offending file (diagnosable from stderr alone)."""
    return "" if path is None else f" at {path}"


def restore_accumulator(
    accumulator: WindowAccumulator, state: dict, path: str | Path | None = None
) -> None:
    """Restore :func:`accumulator_state` output onto a fresh accumulator.

    The accumulator must be configured as the snapshot was (window size,
    pricing) — a mismatch means the resume got different CLI flags than
    the original run, which would silently corrupt the series.  ``path``
    (when known) names the checkpoint file in mismatch errors.
    """
    if accumulator.window_s != state["window_s"]:
        raise CheckpointError(
            f"checkpoint{_at(path)} used window_s={state['window_s']}, "
            f"accumulator has {accumulator.window_s}"
        )
    pricing = PricingModel(**state["pricing"])
    if accumulator.pricing != pricing:
        raise CheckpointError(
            f"checkpoint{_at(path)} used pricing {pricing}, accumulator has "
            f"{accumulator.pricing}"
        )
    accumulator._windows.clear()
    accumulator._cached_index = None
    accumulator._cached_window = None
    for key, data in state["windows"].items():
        window = _Window()
        window.arrivals = data["arrivals"]
        window.completed = data["completed"]
        window.shed = data["shed"]
        window.cold = data["cold"]
        window.boots = data["boots"]
        window.queue.counts = list(data["queue_counts"])
        window.queue.total = data["queue_total"]
        window.queue_sums = dict(data["queue_sums"])
        window.source_counts = {
            source: list(counts)
            for source, counts in data.get("source_counts", {}).items()
        }
        if window.source_counts:
            # A counted snapshot came from a journaled run: keep counting
            # after the resume, whatever this run's own flags say, so the
            # cumulative counters never silently go stale mid-series.
            accumulator.enable_source_counts()
        window.gb_sums = dict(data["gb_sums"])
        window.qos_counts = {
            name: list(counters)
            for name, counters in data["qos_counts"].items()
        }
        window.qos_sums = {
            name: dict(sums) for name, sums in data["qos_sums"].items()
        }
        accumulator._windows[int(key)] = window


# -- the checkpointed streaming driver --------------------------------------


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Durably, atomically write ``payload`` as JSON to ``path``.

    The payload lands in a scratch file first and is ``os.replace``d over
    the destination, so readers only ever see a complete document.  The
    scratch is fsynced before the rename — without it, "atomic" only
    orders the metadata, and a power loss could publish a zero-length
    checkpoint.  The scratch name carries the writer's pid so concurrent
    shard workers can never collide on it, and it is removed on any
    failure between creation and rename, so an exploded serialization
    never leaks a ``.tmp`` next to the checkpoint.
    """
    scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(scratch, "w") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)


def reject_stale_scratch(path: str | Path) -> None:
    """Fail loudly when a crashed writer left scratch files near ``path``.

    A ``<path>*.tmp`` leftover means a writer died *mid-write* (only a
    hard kill can leak one past :func:`_write_json_atomic`'s cleanup).
    The published checkpoint — if any — is still the last consistent
    state, but silently ignoring the wreckage invites exactly the
    half-written-state confusion checkpoints exist to prevent, so resume
    refuses until the user deletes the scratch.
    """
    path = Path(path)
    if not path.parent.exists():
        return
    stale = sorted(path.parent.glob(path.name + "*.tmp"))
    if stale:
        names = ", ".join(item.name for item in stale)
        raise CheckpointError(
            f"stale checkpoint scratch file(s) next to {path}: {names} — a "
            "previous writer crashed mid-write; the checkpoint itself is the "
            "last consistent state, delete the scratch file(s) to resume"
        )


def write_checkpoint(
    path: str | Path,
    platform: ClusterPlatform,
    accumulator: WindowAccumulator,
    consumed: int,
    fingerprint: dict | None = None,
) -> None:
    """Atomically and durably persist a replay checkpoint to ``path``.

    ``consumed`` is the number of arrivals already fed from the
    (deterministic, recompilable) stream; resume skips exactly that many.
    ``fingerprint`` is an opaque JSON-safe description of everything the
    stream and platform were built from (seeds, scales, fleet flags…);
    resume refuses a checkpoint whose fingerprint differs, since skipping
    into a *different* deterministic stream would silently blend two
    workloads into one report.
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "consumed": consumed,
        "apps": sorted(platform.app_names()),
        "fingerprint": fingerprint,
        "platform": platform_state(platform),
        "accumulator": accumulator_state(accumulator),
    }
    _write_json_atomic(Path(path), payload)


def _load_json(path: Path, what: str) -> dict:
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{what} {path} is corrupted (truncated or partial JSON: "
            f"{error}) — delete it to restart from scratch"
        ) from error
    if not isinstance(data, dict):
        raise CheckpointError(
            f"{what} {path} does not hold a JSON object — delete it to "
            "restart from scratch"
        )
    return data


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint written by :func:`write_checkpoint`."""
    path = Path(path)
    data = _load_json(path, "checkpoint")
    if data.get("kind") == MANIFEST_KIND:
        raise CheckpointError(
            f"{path} is a sharded-replay manifest, not a single-run "
            "checkpoint — resume it with the original --workers count"
        )
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {data.get('format')!r} in {path} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    return data


# -- the per-shard manifest --------------------------------------------------


def shard_checkpoint_path(path: str | Path, shard: int, shards: int) -> Path:
    """Where shard ``shard`` of ``shards`` checkpoints, for manifest ``path``."""
    path = Path(path)
    return path.with_name(f"{path.name}.shard-{shard}-of-{shards}.json")


def write_manifest(
    path: str | Path,
    workers: int,
    partition: dict[str, int],
    fingerprint: dict | None = None,
) -> None:
    """Atomically persist the coordinator manifest of a sharded replay.

    The manifest is the rendezvous point of per-shard checkpointing
    (:func:`repro.workloads.shard.run_sharded_checkpointed`): it records
    the worker count, the app-name → shard-index partition, and the
    shared replay fingerprint, plus the shard checkpoint filenames it
    governs.  Resume validates all three before any worker starts, so a
    mismatched ``--workers`` (or a different trace) fails loudly instead
    of each shard skipping into the wrong deterministic stream.
    """
    payload = {
        "kind": MANIFEST_KIND,
        "format": MANIFEST_FORMAT,
        "workers": workers,
        "partition": dict(sorted(partition.items())),
        "fingerprint": fingerprint,
        "shards": [
            shard_checkpoint_path(path, shard, workers).name
            for shard in range(workers)
        ],
    }
    _write_json_atomic(Path(path), payload)


def load_manifest(path: str | Path) -> dict:
    """Read a manifest written by :func:`write_manifest`."""
    path = Path(path)
    data = _load_json(path, "manifest")
    if data.get("kind") != MANIFEST_KIND:
        raise CheckpointError(
            f"{path} is not a sharded-replay manifest (a single-run "
            "checkpoint from a --workers-less replay?) — resume it without "
            "--workers, or delete it to restart"
        )
    if data.get("format") != MANIFEST_FORMAT:
        raise CheckpointError(
            f"unsupported manifest format {data.get('format')!r} in {path}"
        )
    return data


def run_stream_checkpointed(
    platform: ClusterPlatform,
    arrivals: Iterable[tuple[float, str, str]],
    accumulator: WindowAccumulator,
    path: str | Path,
    every_s: float | None = None,
    on_record: Callable[[InvocationRecord], None] | None = None,
    flush_at: float | None = None,
    keep: bool = False,
    fingerprint: dict | None = None,
    journal=None,
    profiler=None,
) -> WindowedSummary:
    """:meth:`ClusterPlatform.run_stream` with durable window checkpoints.

    Bit-identical to a plain ``run_stream`` over the same arrivals (it
    drives the same ``stream_begin``/``stream_feed``/``stream_end``
    machinery), with one addition: before feeding the first arrival of
    each new ``every_s`` period (default: the accumulator's window), the
    platform + accumulator state and the count of arrivals consumed so
    far are written to ``path``.  If ``path`` already exists, the run
    *resumes* from it instead of starting over: the caller hands in the
    platform freshly deployed, the accumulator freshly configured, and
    the arrival stream freshly compiled — everything deterministic — and
    the driver restores the serialized state and skips the consumed
    prefix.  On success the checkpoint is deleted unless ``keep``.

    An interrupted run (crash, KeyboardInterrupt) leaves the newest
    checkpoint on disk; rerunning the same command continues it.

    ``journal`` (a not-yet-opened :class:`repro.obs.journal.JournalWriter`)
    journals the run: the driver opens it — truncating to the restored
    boundary on resume — installs it as the platform's observability
    sink, flushes it *before* every checkpoint write (so the journal's
    boundary marker is always at least as durable as the checkpoint that
    references it), and seals it when the stream completes.  Its window
    size must equal the checkpoint period, or marker and checkpoint
    boundaries would drift apart.  ``profiler``
    (:class:`repro.obs.profile.PhaseProfiler`) accumulates
    checkpoint-write wall time under the ``"checkpoint-write"`` phase.
    """
    path = Path(path)
    reject_stale_scratch(path)
    consumed = 0
    if path.exists():
        data = load_checkpoint(path)
        if data["apps"] != sorted(platform.app_names()):
            raise DeploymentError(
                f"checkpoint {path} covers apps {data['apps']}, "
                f"platform has {platform.app_names()}"
            )
        if data.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {path} was written by a differently-configured "
                f"replay (checkpoint fingerprint {data.get('fingerprint')!r}, "
                f"this run {fingerprint!r}); resuming would blend two "
                "workloads — delete the checkpoint or rerun with the "
                "original flags"
            )
        restore_platform(platform, data["platform"])
        restore_accumulator(accumulator, data["accumulator"], path=path)
        consumed = data["consumed"]
    every = accumulator.window_s if every_s is None else every_s
    if every <= 0:
        raise WorkloadError(f"checkpoint period must be positive: {every}")
    if journal is not None:
        if journal.window_s != every:
            raise WorkloadError(
                f"journal window_s={journal.window_s} must equal the "
                f"checkpoint period {every}: their boundaries are one "
                "protocol"
            )
        journal.resume(consumed)
    platform.stream_begin(accumulator, on_record, obs=journal)
    if profiler is not None:
        # Event-loop sub-phases (drain vs scale vs the arrival/dispatch
        # remainder); the probes uninstall at stream end/abort.
        platform.profile_loop(profiler)
    feed = platform.stream_feed
    boundary: int | None = None
    try:
        stream = iter(arrivals)
        if consumed:
            stream = islice(stream, consumed, None)
        for item in stream:
            at = item[0]
            index = int(at // every)
            if boundary is None:
                boundary = index
                # Anchor the journal's boundary too (no flush on the
                # first arrival — or on the resumed crossing arrival,
                # whose marker is already on disk).
                if journal is not None:
                    journal.flush_boundary(at, consumed)
            elif index > boundary:
                # Journal first: its boundary marker must be durable
                # before the checkpoint that will look for it on resume.
                if journal is not None:
                    journal.flush_boundary(at, consumed)
                if profiler is None:
                    write_checkpoint(
                        path, platform, accumulator, consumed, fingerprint
                    )
                else:
                    with profiler.phase("checkpoint-write"):
                        write_checkpoint(
                            path, platform, accumulator, consumed, fingerprint
                        )
                boundary = index
            if len(item) == 3:
                feed(at, item[1], item[2])
            else:
                feed(at, item[1], item[2], qos=item[3])
            consumed += 1
    except BaseException:
        # Keep the newest on-disk checkpoint for resume, but leave the
        # platform out of streaming mode so state stays inspectable; the
        # journal likewise stays at its last durable boundary.
        platform.stream_abort()
        if journal is not None:
            journal.abort()
        raise
    summary = platform.stream_end(flush_at)
    if journal is not None:
        journal.close()
    if not keep:
        path.unlink(missing_ok=True)
    return summary
