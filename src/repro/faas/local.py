"""Really-executing local FaaS platform.

Runs handlers in-process with real imports and real wall-clock timing.  The
platform clock (injectable, so tests can use a :class:`VirtualClock`) only
gates *keep-alive decisions*; latency measurements always come from
``time.perf_counter``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.common.clock import Clock, RealClock
from repro.common.errors import DeploymentError
from repro.faas.container import RealContainer
from repro.faas.events import InvocationRecord


@dataclass(frozen=True)
class FunctionDeployment:
    """A deployable function package (the 'zip upload' of the paper)."""

    name: str
    workspace: Path  # contains handler.py + generated libraries + runtime
    entries: tuple[str, ...]
    handler_module: str = "handler"
    base_memory_mb: float = 38.0
    keep_alive_s: float = 600.0

    def __post_init__(self) -> None:
        if not self.entries:
            raise DeploymentError(f"deployment {self.name!r} declares no entries")


class _DeployedApp:
    def __init__(self, deployment: FunctionDeployment) -> None:
        self.deployment = deployment
        self.container: RealContainer | None = None
        self.last_used: float = float("-inf")
        self.records: list[InvocationRecord] = []
        self.version = 1


class LocalPlatform:
    """Single-tenant local platform executing real handler code."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or RealClock()
        self._apps: dict[str, _DeployedApp] = {}
        self._container_ids = itertools.count(1)

    def deploy(self, deployment: FunctionDeployment) -> str:
        if deployment.name in self._apps:
            raise DeploymentError(f"app already deployed: {deployment.name!r}")
        if not Path(deployment.workspace).is_dir():
            raise DeploymentError(
                f"workspace does not exist: {deployment.workspace}"
            )
        self._apps[deployment.name] = _DeployedApp(deployment)
        return deployment.name

    def redeploy(self, deployment: FunctionDeployment) -> None:
        """Replace an app's package (e.g. after optimization); pool resets."""
        app = self._app(deployment.name)
        version = app.version
        records = app.records
        fresh = _DeployedApp(deployment)
        fresh.version = version + 1
        fresh.records = records
        self._apps[deployment.name] = fresh

    def _app(self, name: str) -> _DeployedApp:
        try:
            return self._apps[name]
        except KeyError:
            raise DeploymentError(f"unknown app: {name!r}") from None

    def invoke(
        self, name: str, entry: str, payload: Any = None
    ) -> InvocationRecord:
        """Invoke an entry; cold-starts when no warm container exists."""
        app = self._app(name)
        deployment = app.deployment
        if entry not in deployment.entries:
            raise DeploymentError(f"app {name!r} has no entry {entry!r}")
        now = self.clock.now()
        expired = now - app.last_used > deployment.keep_alive_s
        cold = app.container is None or expired
        init_ms = 0.0
        if cold:
            container = RealContainer(
                container_id=f"{name}-c{next(self._container_ids)}",
                workspace=Path(deployment.workspace),
                handler_module=deployment.handler_module,
                base_memory_mb=deployment.base_memory_mb,
            )
            init_ms = container.cold_start()
            app.container = container
        assert app.container is not None
        _, exec_ms = app.container.invoke(entry, payload)
        app.last_used = now
        record = InvocationRecord(
            app=name,
            entry=entry,
            timestamp=now,
            cold=cold,
            init_ms=init_ms,
            exec_ms=exec_ms,
            e2e_ms=init_ms + exec_ms,
            memory_mb=app.container.memory_mb(),
            container_id=app.container.container_id,
        )
        app.records.append(record)
        return record

    def force_cold(self, name: str) -> None:
        """Drop the warm container so the next invocation cold-starts."""
        self._app(name).container = None

    def records(self, name: str) -> list[InvocationRecord]:
        return list(self._app(name).records)

    def clear_history(self, name: str) -> None:
        self._app(name).records.clear()

    def app_names(self) -> list[str]:
        return sorted(self._apps)

    def runtime_registry(self, name: str) -> Any:
        """The live ``_slimstart_runtime`` module of an app's container."""
        container = self._app(name).container
        return None if container is None else container.runtime
