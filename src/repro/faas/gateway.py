"""Request gateway: function-URL routing plus workload observation.

The paper deploys each entry point behind a function URL; requests arrive
at the gateway, which routes them to the right application/entry and feeds
the adaptive workload monitor (Fig. 4's invocation arrow into SLIMSTART).
The gateway is back-end agnostic: it works with :class:`LocalPlatform`,
:class:`SimPlatform`, and :class:`~repro.faas.cluster.ClusterPlatform`
since they share the ``invoke`` signature.  Back ends that also expose
``submit`` (the cluster's event-queue ingestion) additionally accept
*deferred* routing via :meth:`Gateway.submit` / :meth:`submit_schedule`,
which is how Poisson/bursty schedules replay at cluster scale.  The
multi-region :class:`~repro.faas.region.FederatedGateway` extends that
deferred path with an origin region per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol

from repro.common.errors import DeploymentError
from repro.core.adaptive import WindowDecision, WorkloadMonitor
from repro.faas.events import InvocationRecord


class _InvokingPlatform(Protocol):
    def invoke(self, name: str, entry: str, *args, **kwargs) -> InvocationRecord:
        ...  # pragma: no cover - protocol stub


@dataclass(frozen=True)
class Route:
    """One function URL: path -> (application, entry point)."""

    path: str  # e.g. "/graph_bfs/bfs"
    app: str
    entry: str

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise DeploymentError(f"route path must start with '/': {self.path!r}")


@dataclass
class Gateway:
    """Routes request paths to platform invocations and observes traffic."""

    platform: _InvokingPlatform
    monitor: WorkloadMonitor | None = None
    _routes: dict[str, Route] = field(default_factory=dict)
    _hits: dict[str, int] = field(default_factory=dict)

    def add_route(self, path: str, app: str, entry: str) -> Route:
        if path in self._routes:
            raise DeploymentError(f"route already registered: {path!r}")
        route = Route(path=path, app=app, entry=entry)
        self._routes[path] = route
        return route

    def expose(self, app: str, entries: tuple[str, ...]) -> list[Route]:
        """Create the conventional ``/<app>/<entry>`` URL per entry point."""
        return [
            self.add_route(f"/{app}/{entry}", app, entry) for entry in entries
        ]

    def routes(self) -> list[Route]:
        """All registered routes, sorted by path."""
        return sorted(self._routes.values(), key=lambda route: route.path)

    def hit_counts(self) -> dict[str, int]:
        """Requests observed per path (sync and deferred alike)."""
        return dict(self._hits)

    def request(
        self, path: str, payload: Any = None, at: float | None = None
    ) -> tuple[InvocationRecord, list[WindowDecision]]:
        """Serve one request; returns the record and any closed windows.

        The monitor (when attached) observes the route's *entry point*
        probabilities — the quantity Eqs. 5-7 are defined over.
        """
        route = self._routes.get(path)
        if route is None:
            raise DeploymentError(f"no route for path {path!r}")
        kwargs: dict[str, Any] = {}
        if at is not None:
            kwargs["at"] = at
        elif payload is not None:
            kwargs["payload"] = payload
        record = self.platform.invoke(route.app, route.entry, **kwargs)
        self._hits[path] = self._hits.get(path, 0) + 1
        decisions: list[WindowDecision] = []
        if self.monitor is not None:
            decisions = self.monitor.observe(route.entry, record.timestamp)
        return record, decisions

    def submit(self, path: str, at: float) -> list[WindowDecision]:
        """Route one *deferred* arrival into an event-queue back end.

        The request is enqueued at virtual time ``at`` and completes when
        the platform's event loop runs; hit counts and the monitor observe
        the arrival immediately (arrival time is what Eqs. 5-7 window on).
        Requires a platform exposing ``submit`` (the cluster simulator).
        """
        route = self._routes.get(path)
        if route is None:
            raise DeploymentError(f"no route for path {path!r}")
        submit = getattr(self.platform, "submit", None)
        if submit is None:
            raise DeploymentError(
                f"platform {type(self.platform).__name__} does not accept "
                "deferred submissions; use request() instead"
            )
        submit(route.app, route.entry, at=at)
        self._hits[path] = self._hits.get(path, 0) + 1
        if self.monitor is not None:
            return self.monitor.observe(route.entry, at)
        return []

    def submit_schedule(
        self, app: str, schedule: Iterable[tuple[float, str]]
    ) -> list[WindowDecision]:
        """Submit an ``(arrival_s, entry)`` schedule over conventional URLs.

        Routes must already exist (see :meth:`expose`).  Returns every
        window decision the monitor closed while observing the schedule.
        """
        decisions: list[WindowDecision] = []
        for at, entry in schedule:
            decisions.extend(self.submit(f"/{app}/{entry}", at))
        return decisions

    def submit_stream(self, stream, accumulator, on_record=None, obs=None):
        """Stream ``(arrival_s, path[, qos])`` items through the platform.

        The streaming analogue of :meth:`submit_schedule` for back ends
        exposing ``run_stream`` (the cluster simulator): each arrival is
        routed (hit counts bumped, monitor fed) and handed to the
        platform *incrementally*, and completed records fold into
        ``accumulator`` (a :class:`~repro.metrics.WindowAccumulator`)
        rather than materializing.  Items may carry a trailing QoS class
        name (the shape :func:`repro.workloads.replay.as_paths` produces
        from an :func:`~repro.workloads.replay.assign_qos`-tagged
        stream); it passes through to the platform's per-class deadline
        accounting.  Returns the finalized
        :class:`~repro.metrics.WindowedSummary`.  Monitor window
        decisions are observed but not collected — a million-request
        replay must not build a decision list either.  ``obs`` threads an
        observability sink (run journal) through to the platform.
        """
        run_stream = getattr(self.platform, "run_stream", None)
        if run_stream is None:
            raise DeploymentError(
                f"platform {type(self.platform).__name__} does not support "
                "streaming replay; use submit_schedule() instead"
            )
        arrivals = self._route_arrivals(stream)
        return run_stream(arrivals, accumulator, on_record=on_record, obs=obs)

    def _route_arrivals(self, stream):
        """Route a lazy ``(arrival_s, path, *extras)`` stream.

        The shared front half of every streaming submit path: resolves
        each function URL, bumps hit counts, feeds the monitor, and
        yields ``(arrival_s, app, entry, *extras)`` — extras (e.g. an
        origin region) pass through untouched for subclasses to consume.
        """
        for item in stream:
            at, path = item[0], item[1]
            route = self._routes.get(path)
            if route is None:
                raise DeploymentError(f"no route for path {path!r}")
            self._hits[path] = self._hits.get(path, 0) + 1
            if self.monitor is not None:
                self.monitor.observe(route.entry, at)
            yield (at, route.app, route.entry, *item[2:])
