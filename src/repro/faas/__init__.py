"""Local FaaS testbed: the substrate standing in for AWS Lambda.

Two interchangeable back ends share one record schema:

* :class:`~repro.faas.local.LocalPlatform` really imports and executes
  handler code in-process, with per-container import isolation and real
  wall-clock timing — used by the case studies and the profiler-overhead
  experiment.
* :class:`~repro.faas.sim.SimPlatform` is an event-driven virtual-time
  simulator driven by the same application/library specifications — used
  by the 500-cold-start evaluation sweeps, which would take hours of wall
  time to execute for real.
"""

from repro.faas.events import InvocationRecord, InvocationStats
from repro.faas.gateway import Gateway, Route
from repro.faas.local import FunctionDeployment, LocalPlatform
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform, SimPlatformConfig
from repro.faas.storage import CloudStorage

__all__ = [
    "InvocationRecord",
    "InvocationStats",
    "Gateway",
    "Route",
    "FunctionDeployment",
    "LocalPlatform",
    "EntryBehavior",
    "SimAppConfig",
    "SimPlatform",
    "SimPlatformConfig",
    "CloudStorage",
]
