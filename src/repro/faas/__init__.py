"""Local FaaS testbed: the substrate standing in for AWS Lambda.

Three interchangeable back ends share one record schema:

* :class:`~repro.faas.local.LocalPlatform` really imports and executes
  handler code in-process, with per-container import isolation and real
  wall-clock timing — used by the case studies and the profiler-overhead
  experiment.
* :class:`~repro.faas.sim.SimPlatform` is an event-driven virtual-time
  simulator driven by the same application/library specifications — used
  by the 500-cold-start evaluation sweeps, which would take hours of wall
  time to execute for real.
* :class:`~repro.faas.cluster.ClusterPlatform` scales the simulator to
  fleet questions: per-application container fleets behind a heap-based
  event loop, with scale-from-zero, FIFO request queueing, configurable
  per-container concurrency, and keep-alive expiry.  It emits the
  cluster metrics (:class:`~repro.faas.cluster.FleetStats`): cold-start
  rate vs. offered load, queueing-delay percentiles, container-seconds.

All three are fronted by the :class:`~repro.faas.gateway.Gateway`, which
maps function URLs to (application, entry) pairs and feeds the adaptive
workload monitor; the cluster back end additionally accepts deferred
(batched) submissions so whole schedules replay under true concurrency.

:mod:`repro.faas.autoscale` makes the cluster's scaling decisions
pluggable: a :class:`~repro.faas.autoscale.ScalingPolicy` per fleet
(eager per-request, target-utilization headroom, or Knative-style
panic windows), selected via
:attr:`~repro.faas.cluster.FleetConfig.policy`, with every run priced
in dollars through the :class:`~repro.metrics.CostSummary` cost view.
:mod:`repro.faas.forecast` adds the feed-forward option: window-count
forecasters (EWMA, additive-seasonal Holt-Winters) behind the
:class:`~repro.faas.forecast.Predictive` policy, which pre-warms
containers ahead of the forecast demand instead of reacting to it.

:mod:`repro.faas.region` scales the cluster across *regions*: a
:class:`~repro.faas.region.RegionFederation` runs one cluster per named
region on a shared virtual clock, with pluggable latency-aware routing
policies (round-robin, least-loaded, locality-biased with spillover) and
cross-region failover, fronted by the
:class:`~repro.faas.region.FederatedGateway`.
"""

from repro.faas.autoscale import (
    FleetView,
    PanicWindow,
    PerRequest,
    ScalingPolicy,
    TargetUtilization,
    WindowObservation,
    make_scaling_policy,
)
from repro.faas.forecast import (
    EWMAForecaster,
    Forecaster,
    HoltWintersForecaster,
    Predictive,
    make_forecaster,
)
from repro.faas.cluster import (
    ClusterPlatform,
    FleetConfig,
    FleetStats,
    replay_cluster_workload,
)
from repro.faas.events import InvocationRecord, InvocationStats
from repro.faas.gateway import Gateway, Route
from repro.faas.local import FunctionDeployment, LocalPlatform
from repro.faas.region import (
    DROP,
    FederatedGateway,
    LeastLoadedPolicy,
    LocalityPolicy,
    ProbabilisticOffloadPolicy,
    RegionFederation,
    RegionSpec,
    RegionTopology,
    RoundRobinPolicy,
    RouteAssignment,
    RoutingPolicy,
    replay_federated_workload,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform, SimPlatformConfig
from repro.faas.storage import CloudStorage

__all__ = [
    "FleetView",
    "PanicWindow",
    "PerRequest",
    "ScalingPolicy",
    "TargetUtilization",
    "WindowObservation",
    "make_scaling_policy",
    "EWMAForecaster",
    "Forecaster",
    "HoltWintersForecaster",
    "Predictive",
    "make_forecaster",
    "InvocationRecord",
    "InvocationStats",
    "Gateway",
    "Route",
    "FunctionDeployment",
    "LocalPlatform",
    "EntryBehavior",
    "SimAppConfig",
    "SimPlatform",
    "SimPlatformConfig",
    "ClusterPlatform",
    "FleetConfig",
    "FleetStats",
    "replay_cluster_workload",
    "DROP",
    "FederatedGateway",
    "LeastLoadedPolicy",
    "LocalityPolicy",
    "ProbabilisticOffloadPolicy",
    "RegionFederation",
    "RegionSpec",
    "RegionTopology",
    "RoundRobinPolicy",
    "RouteAssignment",
    "RoutingPolicy",
    "replay_federated_workload",
    "CloudStorage",
]
