"""Window-count forecasting and the predictive pre-warming scaling policy.

Every shipped :class:`~repro.faas.autoscale.ScalingPolicy` is purely
reactive — it pays a cold start the moment demand outruns booked
capacity, every diurnal peak, every shift event.  But the replay engine
*knows* those peaks: the per-window arrival counts the stream path
already tallies form a time series with strong daily structure, and a
fleet that learns it can boot capacity *before* the wave instead of
behind it.  This module supplies both halves:

* **Forecast layer** — a :class:`Forecaster` protocol over per-fleet
  per-window admitted-arrival counts, fed incrementally through the
  :meth:`~repro.faas.autoscale.ScalingPolicy.observe_window` hook.
  :class:`EWMAForecaster` is the level-only baseline (exponentially
  weighted moving average; flat forecast).  :class:`HoltWintersForecaster`
  is the additive-seasonal Holt-Winters model fit online: level, trend,
  and one seasonal index per window-of-day, so it anticipates the diurnal
  swing and, after a workload shift, relearns the new level in a few
  windows instead of dragging a stale average.
* **Policy layer** — :class:`Predictive`, a scaling policy that wraps a
  reactive *base* policy (demand coverage, cold-history fallback) and
  adds pre-warming: it converts the forecast next-window arrival count
  into a container target via an online arrivals→peak-concurrency ratio,
  boots ahead of the window (a configurable ``prewarm_lead_s`` before
  the boundary) with a ``headroom`` multiplier, and *holds* the fleet —
  suspends keep-alive retirement — through windows the forecast says
  will stay busy.  When history is cold (fewer observed windows than the
  forecaster's warmup) it behaves exactly like its base policy.

Everything is deterministic and checkpoint-safe: forecaster state
round-trips through ``export_state``/``restore_state`` losslessly (JSON
shortest-repr floats), so a resumed replay's scaling decisions are
bit-identical to an uninterrupted run's (``tests/faas/test_snapshot.py``
pins it; ``tests/property/test_forecast_properties.py`` pins the
forecasters' convexity/convergence/round-trip invariants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar

from repro.common.errors import SpecError
from repro.faas.autoscale import (
    FleetView,
    ScalingPolicy,
    TargetUtilization,
    WindowObservation,
)

__all__ = [
    "FORECASTER_NAMES",
    "EWMAForecaster",
    "Forecaster",
    "HoltWintersForecaster",
    "Predictive",
    "make_forecaster",
]


def _check_horizon(horizon: int) -> None:
    if horizon < 1:
        raise SpecError(f"forecast horizon must be >= 1: {horizon}")


class Forecaster:
    """Online one-series forecaster over per-window arrival counts.

    Implementations are frozen dataclasses carrying parameters only —
    mirror of :class:`~repro.faas.autoscale.ScalingPolicy`.  Mutable
    per-fleet fit state is created by :meth:`new_state` and threaded back
    into every call, so one forecaster instance can serve many fleets.
    ``forecast`` returns ``None`` while the model is still cold (too few
    observed windows to trust), which is the caller's signal to fall
    back to reactive behaviour.
    """

    name: ClassVar[str] = "abstract"

    def new_state(self):
        """Fresh per-fleet fit state."""
        raise NotImplementedError  # pragma: no cover - interface

    def observe(self, state, count: float) -> None:
        """Fold one closed window's admitted-arrival count into the fit."""
        raise NotImplementedError  # pragma: no cover - interface

    def forecast(self, state, horizon: int = 1) -> float | None:
        """Predicted count ``horizon`` windows ahead (``None`` while cold)."""
        raise NotImplementedError  # pragma: no cover - interface

    def export_state(self, state) -> dict:
        """JSON-safe dump of the fit state, for checkpoints."""
        raise NotImplementedError  # pragma: no cover - interface

    def restore_state(self, data: dict):
        """Rebuild fit state from :meth:`export_state`'s output."""
        raise NotImplementedError  # pragma: no cover - interface


class _EWMAState:
    """Observation count plus the exponentially weighted level."""

    __slots__ = ("n", "level")

    def __init__(self) -> None:
        self.n = 0
        self.level = 0.0


@dataclass(frozen=True)
class EWMAForecaster(Forecaster):
    """Exponentially weighted moving average — the level-only baseline.

    The forecast is flat (the current level, at every horizon), and the
    level is a convex combination of everything observed, so a forecast
    always lies within the min/max of the observed history — the
    property test's anchor.  Reacts to shifts at rate ``alpha`` but
    cannot anticipate seasonality: on a diurnal series it forever lags
    the swing by a few windows.

    Attributes:
        alpha: Smoothing factor in ``(0, 1]`` — weight of the newest
            window against the running level.
        warmup: Observed windows required before ``forecast`` commits
            to a number (``None`` until then).
    """

    alpha: float = 0.35
    warmup: int = 3
    name: ClassVar[str] = "ewma"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise SpecError(f"EWMA alpha must be in (0, 1]: {self.alpha}")
        if self.warmup < 1:
            raise SpecError(f"EWMA warmup must be >= 1: {self.warmup}")

    def new_state(self) -> _EWMAState:
        return _EWMAState()

    def observe(self, state: _EWMAState, count: float) -> None:
        if state.n == 0:
            state.level = count
        else:
            state.level = self.alpha * count + (1.0 - self.alpha) * state.level
        state.n += 1

    def forecast(self, state: _EWMAState, horizon: int = 1) -> float | None:
        _check_horizon(horizon)
        if state.n < self.warmup:
            return None
        return state.level

    def export_state(self, state: _EWMAState) -> dict:
        return {"n": state.n, "level": state.level}

    def restore_state(self, data: dict) -> _EWMAState:
        state = _EWMAState()
        state.n = data["n"]
        state.level = data["level"]
        return state


class _HoltWintersState:
    """First-season buffer, then level/trend/seasonal components."""

    __slots__ = ("n", "buffer", "level", "trend", "season")

    def __init__(self) -> None:
        self.n = 0
        self.buffer: list[float] = []  # first season's raw observations
        self.level = 0.0
        self.trend = 0.0
        self.season: list[float] = []  # additive index per window-of-season


@dataclass(frozen=True)
class HoltWintersForecaster(Forecaster):
    """Additive-seasonal Holt-Winters, fit online window by window.

    The first ``season_windows`` observations initialize the components
    (level = season mean, trend = 0, seasonal index = deviation from the
    mean); every later window runs the standard additive recurrences.
    On an *exactly* periodic series the initialization is already the
    fixed point, so forecasts match the per-phase means from the first
    post-season window onward (the property test's anchor).  On the
    replay's diurnal traces the seasonal indices carry the daily swing
    while ``alpha`` relearns the level after a shift event.

    Attributes:
        alpha: Level smoothing factor, in ``(0, 1]``.
        beta: Trend smoothing factor, in ``[0, 1]``.
        gamma: Seasonal smoothing factor, in ``[0, 1]``.
        season_windows: Windows per season (e.g. 24 one-hour windows for
            a diurnal period); the model is cold until one full season
            has been observed.
    """

    alpha: float = 0.4
    beta: float = 0.1
    gamma: float = 0.3
    season_windows: int = 24
    name: ClassVar[str] = "holt-winters"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise SpecError(f"Holt-Winters alpha must be in (0, 1]: {self.alpha}")
        if not 0.0 <= self.beta <= 1.0:
            raise SpecError(f"Holt-Winters beta must be in [0, 1]: {self.beta}")
        if not 0.0 <= self.gamma <= 1.0:
            raise SpecError(f"Holt-Winters gamma must be in [0, 1]: {self.gamma}")
        if self.season_windows < 2:
            raise SpecError(
                f"season must span at least 2 windows: {self.season_windows}"
            )

    def new_state(self) -> _HoltWintersState:
        return _HoltWintersState()

    def observe(self, state: _HoltWintersState, count: float) -> None:
        m = self.season_windows
        if state.n < m:
            state.buffer.append(count)
            state.n += 1
            if state.n == m:
                mean = math.fsum(state.buffer) / m
                state.level = mean
                state.trend = 0.0
                state.season = [x - mean for x in state.buffer]
                state.buffer = []
            return
        slot = state.n % m
        seasonal = state.season[slot]
        level = self.alpha * (count - seasonal) + (1.0 - self.alpha) * (
            state.level + state.trend
        )
        state.trend = self.beta * (level - state.level) + (1.0 - self.beta) * state.trend
        state.season[slot] = self.gamma * (count - level) + (1.0 - self.gamma) * seasonal
        state.level = level
        state.n += 1

    def forecast(self, state: _HoltWintersState, horizon: int = 1) -> float | None:
        _check_horizon(horizon)
        m = self.season_windows
        if state.n < m:
            return None
        slot = (state.n + horizon - 1) % m
        value = state.level + horizon * state.trend + state.season[slot]
        return value if value > 0.0 else 0.0

    def export_state(self, state: _HoltWintersState) -> dict:
        return {
            "n": state.n,
            "buffer": list(state.buffer),
            "level": state.level,
            "trend": state.trend,
            "season": list(state.season),
        }

    def restore_state(self, data: dict) -> _HoltWintersState:
        state = _HoltWintersState()
        state.n = data["n"]
        state.buffer = list(data["buffer"])
        state.level = data["level"]
        state.trend = data["trend"]
        state.season = list(data["season"])
        return state


#: CLI-facing forecaster registry (see ``slimstart replay --forecaster``).
FORECASTER_NAMES = ("ewma", "holt-winters")


def make_forecaster(name: str, season_windows: int | None = None) -> Forecaster:
    """Build a forecaster from its CLI name.

    ``season_windows`` configures the Holt-Winters seasonal period and is
    rejected for forecasters that have no season — a silently ignored
    flag would misconfigure the model the user thinks they tuned.
    """
    if name == "ewma":
        if season_windows is not None:
            raise SpecError("--season-windows only applies to holt-winters")
        return EWMAForecaster()
    if name == "holt-winters":
        if season_windows is None:
            return HoltWintersForecaster()
        return HoltWintersForecaster(season_windows=season_windows)
    raise SpecError(
        f"unknown forecaster: {name!r} (choose from {FORECASTER_NAMES})"
    )


class _PredictiveState:
    """Base-policy state, forecaster fit, and the prewarm bookkeeping."""

    __slots__ = ("base", "fc", "last_fed", "open_peak", "ratio", "hold_until")

    def __init__(self, base, fc) -> None:
        self.base = base  # wrapped reactive policy's state
        self.fc = fc  # forecaster fit state
        self.last_fed: int | None = None  # newest closed window index fed
        self.open_peak = 0  # peak concurrent demand in the open window
        self.ratio: float | None = None  # EWMA of peak-demand / arrivals
        self.hold_until = -math.inf  # scale-down suspended until here


@dataclass(frozen=True)
class Predictive(ScalingPolicy):
    """Pre-warm containers ahead of the forecast next-window demand.

    Wraps a reactive *base* policy and adds a feed-forward path.  The
    cluster feeds one :class:`~repro.faas.autoscale.WindowObservation`
    per closed ``window_s`` (admitted arrivals only, empty gap windows
    included so seasonal phase stays aligned); each observation updates
    the forecaster and an online arrivals→peak-concurrency ratio — the
    bridge from "how many requests next window" to "how many containers
    to keep warm".  On every scale decision the policy forecasts the
    *target* window (the current one, or the next one once ``now`` is
    within ``prewarm_lead_s`` of the boundary), converts it to a
    container count with a ``headroom`` multiplier, boots any shortfall,
    and — when the forecast justifies the fleet's current size —
    *holds* it: :meth:`idle_expiry` suspends retirement through the end
    of the target window, so a predicted-busy window never pays
    keep-alive churn between sparse arrivals.  The boot decision itself
    is ``max(base, prewarm)``, and while the forecaster is cold the
    prewarm term is absent entirely — the policy degrades to its base.

    Attributes:
        base: Reactive policy supplying demand coverage and the cold
            fallback (must not itself be predictive).
        forecaster: The window-count model (:class:`EWMAForecaster` or
            :class:`HoltWintersForecaster`).
        window_s: Observation window width in seconds; choose so the
            workload's period is a whole number of windows (one hour
            against a diurnal day, with ``season_windows=24``).
        prewarm_lead_s: How long before a window boundary the policy
            starts provisioning for the *next* window, in ``[0,
            window_s]``.
        headroom: Multiplier on the forecast demand, ``> 0`` (above 1
            overprovisions to absorb forecast error).
        hold_min_arrivals: Minimum forecast arrival count in the target
            window for the *hold* to engage (the pre-warm boot itself is
            unaffected).  A hold through a nearly-empty window spends
            more idle GB-seconds than the handful of cold starts it
            prevents are worth; this floor keeps the hold where the
            traffic is.  0 (the default) holds on any positive forecast.
    """

    base: ScalingPolicy = field(default_factory=TargetUtilization)
    forecaster: Forecaster = field(default_factory=EWMAForecaster)
    window_s: float = 3600.0
    prewarm_lead_s: float = 0.0
    headroom: float = 1.2
    hold_min_arrivals: float = 0.0
    name: ClassVar[str] = "predictive"

    def __post_init__(self) -> None:
        if not isinstance(self.base, ScalingPolicy) or isinstance(self.base, Predictive):
            raise SpecError(
                f"predictive base must be a non-predictive scaling policy: "
                f"{self.base!r}"
            )
        if not isinstance(self.forecaster, Forecaster):
            raise SpecError(f"not a forecaster: {self.forecaster!r}")
        if self.window_s <= 0:
            raise SpecError(f"observation window must be positive: {self.window_s}")
        if not 0.0 <= self.prewarm_lead_s <= self.window_s:
            raise SpecError(
                f"prewarm lead must be in [0, window_s={self.window_s}]: "
                f"{self.prewarm_lead_s}"
            )
        if self.headroom <= 0:
            raise SpecError(f"headroom must be positive: {self.headroom}")
        if self.hold_min_arrivals < 0:
            raise SpecError(
                f"hold floor must be non-negative: {self.hold_min_arrivals}"
            )

    # -- state plumbing ------------------------------------------------------

    def new_state(self) -> _PredictiveState:
        return _PredictiveState(self.base.new_state(), self.forecaster.new_state())

    def export_state(self, state: _PredictiveState) -> dict:
        return {
            "base": self.base.export_state(state.base),
            "forecaster": self.forecaster.export_state(state.fc),
            "last_fed": state.last_fed,
            "open_peak": state.open_peak,
            "ratio": state.ratio,
            # -inf (never held) is not JSON-representable; mark None.
            "hold_until": (
                None if math.isinf(state.hold_until) else state.hold_until
            ),
        }

    def restore_state(self, data: dict) -> _PredictiveState:
        state = _PredictiveState(
            self.base.restore_state(data["base"]),
            self.forecaster.restore_state(data["forecaster"]),
        )
        state.last_fed = data["last_fed"]
        state.open_peak = data["open_peak"]
        state.ratio = data["ratio"]
        state.hold_until = (
            -math.inf if data["hold_until"] is None else data["hold_until"]
        )
        return state

    # -- observation feed ----------------------------------------------------

    def observation_window_s(self) -> float:
        return self.window_s

    def observe_window(
        self, state: _PredictiveState, observation: WindowObservation
    ) -> None:
        self.forecaster.observe(state.fc, float(observation.arrivals))
        if observation.arrivals > 0 and state.open_peak > 0:
            # One ratio sample per non-empty window: the peak concurrent
            # demand its arrivals produced, per arrival.  EWMA-smoothed —
            # service-time changes shift it slowly, one noisy window
            # doesn't whipsaw the prewarm size.
            sample = state.open_peak / observation.arrivals
            state.ratio = (
                sample if state.ratio is None else 0.5 * sample + 0.5 * state.ratio
            )
        state.open_peak = 0
        state.last_fed = observation.index

    def observe_arrival(self, state: _PredictiveState, now: float) -> None:
        self.base.observe_arrival(state.base, now)

    # -- scaling decisions ---------------------------------------------------

    def uses_last_of_fleet(self) -> bool:
        return self.base.uses_last_of_fleet()

    def scale_out(self, state: _PredictiveState, view: FleetView) -> int:
        state.open_peak = max(state.open_peak, view.demand)
        boot = self.base.scale_out(state.base, view)
        if state.last_fed is None or state.ratio is None:
            return boot  # cold history: pure base-policy behaviour
        w = self.window_s
        index = int(view.now // w)
        target = index
        if view.now >= (index + 1) * w - self.prewarm_lead_s:
            target = index + 1  # inside the lead: provision for next window
        predicted = self.forecaster.forecast(state.fc, target - state.last_fed)
        if predicted is None:
            return boot
        demand = predicted * state.ratio * self.headroom
        want = math.ceil(demand / view.max_concurrency) if demand > 0 else 0
        want = min(want, view.max_containers)
        if 0 < want >= view.live_containers and predicted >= self.hold_min_arrivals:
            # The forecast justifies everything currently live: suspend
            # scale-down through the end of the target window so sparse
            # in-window gaps don't churn keep-alive.
            state.hold_until = max(state.hold_until, (target + 1) * w)
        return max(boot, want - view.live_containers)

    def decision(
        self, state: _PredictiveState, view: FleetView, want: int, booted: int
    ) -> dict:
        record = ScalingPolicy.decision(self, state, view, want, booted)
        # Recompute the feed-forward inputs purely: forecast() is a read
        # of the fitted model, and none of scale_out's mutations
        # (open_peak, hold_until, the base's state) may be repeated here.
        record["ratio"] = state.ratio
        if state.last_fed is None or state.ratio is None:
            record["forecast"] = None  # cold history: base behaviour
            record["prewarm"] = 0
            return record
        w = self.window_s
        index = int(view.now // w)
        target = index
        if view.now >= (index + 1) * w - self.prewarm_lead_s:
            target = index + 1
        predicted = self.forecaster.forecast(state.fc, target - state.last_fed)
        record["forecast"] = predicted
        record["target_window"] = target
        if predicted is None:
            record["prewarm"] = 0
            return record
        demand = predicted * state.ratio * self.headroom
        prewarm_want = math.ceil(demand / view.max_concurrency) if demand > 0 else 0
        prewarm_want = min(prewarm_want, view.max_containers)
        record["prewarm"] = max(0, prewarm_want - view.live_containers)
        return record

    def idle_expiry(
        self,
        state: _PredictiveState,
        idle_since: float,
        keep_alive_s: float,
        last_of_fleet: bool,
    ) -> float:
        base = self.base.idle_expiry(
            state.base, idle_since, keep_alive_s, last_of_fleet
        )
        return max(base, state.hold_until)
