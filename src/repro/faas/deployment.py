"""Packaging helpers: build and version function workspaces.

A deployable workspace is one directory holding the handler module plus the
materialized synthetic libraries (mirroring the paper's zip packages that
bundle source and dependencies).  Optimization never mutates a deployed
workspace in place — it clones the workspace, rewrites the clone, and
redeploys, which models the CI/CD flow of Fig. 4 and keeps the unoptimized
baseline intact for comparison.  The virtual-time back ends follow the
same discipline without files: ``SimPlatform.redeploy`` and
``ClusterPlatform.redeploy`` swap in a freshly compiled (config, plan)
state and retire every warm container, i.e. a new function version.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.common.errors import DeploymentError
from repro.synthlib.generator import materialize_ecosystem
from repro.synthlib.spec import Ecosystem


def build_workspace(
    ecosystem: Ecosystem,
    handler_source: str,
    dest: str | Path,
    scale: float = 1.0,
    handler_name: str = "handler",
) -> Path:
    """Materialize libraries and write the handler; returns the workspace."""
    workspace = Path(dest)
    materialize_ecosystem(ecosystem, workspace, scale=scale)
    (workspace / f"{handler_name}.py").write_text(handler_source)
    return workspace


def clone_workspace(source: str | Path, dest: str | Path) -> Path:
    """Copy a workspace for rewriting (the 'new function version')."""
    source_path = Path(source)
    dest_path = Path(dest)
    if not source_path.is_dir():
        raise DeploymentError(f"workspace does not exist: {source_path}")
    if dest_path.exists():
        raise DeploymentError(f"destination already exists: {dest_path}")
    shutil.copytree(source_path, dest_path)
    return dest_path


def read_handler(workspace: str | Path, handler_name: str = "handler") -> str:
    """Read the handler source from a workspace."""
    path = Path(workspace) / f"{handler_name}.py"
    if not path.is_file():
        raise DeploymentError(f"no handler module at {path}")
    return path.read_text()


def write_handler(
    workspace: str | Path, source: str, handler_name: str = "handler"
) -> Path:
    """Overwrite the handler source in a workspace (post-optimization)."""
    path = Path(workspace) / f"{handler_name}.py"
    path.write_text(source)
    # Drop any stale bytecode so the rewritten source is what executes.
    cache_dir = path.parent / "__pycache__"
    if cache_dir.is_dir():
        for stale in cache_dir.glob(f"{handler_name}.*.pyc"):
            stale.unlink()
    return path
