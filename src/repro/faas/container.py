"""Import-isolated containers for the really-executing testbed.

A "container" here is an isolated import universe inside the current
process: the workspace directory (generated libraries + handler) is mounted
at the front of ``sys.path`` and every module previously loaded from *any*
mounted workspace is purged from ``sys.modules`` before a cold start, so
the handler's global imports really re-execute — burning real CPU — exactly
like a fresh Lambda sandbox re-imports everything.

Single-active-workspace constraint: because ``sys.modules`` is process
global, only the most recently cold-started container is live.  Cold
starting app B strands app A's warm container (its lazy imports would
resolve against B's workspace); invoke ``force_cold`` when switching back.
The virtual-time simulators have no such constraint — ``SimPlatform``
books any number of warm containers per app, and the cluster layer
(:mod:`repro.faas.cluster`) runs whole fleets of them concurrently.
"""

from __future__ import annotations

import importlib
import sys
import time
from pathlib import Path
from typing import Any

from repro.common.errors import DeploymentError


class ModuleSandbox:
    """Process-wide registry of mounted synthetic workspaces.

    Class-level on purpose: ``sys.modules``/``sys.path`` are process-global,
    so isolation bookkeeping must be too.
    """

    _mounted: list[str] = []

    @classmethod
    def mount(cls, workspace: str | Path) -> None:
        """Put ``workspace`` at the front of ``sys.path`` (moving if needed)."""
        path = str(Path(workspace).resolve())
        if path in sys.path:
            sys.path.remove(path)
        sys.path.insert(0, path)
        if path not in cls._mounted:
            cls._mounted.append(path)
        importlib.invalidate_caches()

    @classmethod
    def unmount(cls, workspace: str | Path) -> None:
        path = str(Path(workspace).resolve())
        # Purge while the workspace is still registered — otherwise its
        # modules (e.g. a stale ``handler``) would survive in sys.modules
        # and shadow the next workspace's modules of the same name.
        cls.purge()
        if path in sys.path:
            sys.path.remove(path)
        if path in cls._mounted:
            cls._mounted.remove(path)

    @classmethod
    def purge(cls) -> int:
        """Remove every module loaded from any mounted workspace.

        Returns the number of modules removed.  This is the "container
        teardown": after a purge, importing the handler re-executes all
        synthetic library code from scratch.
        """
        removed = 0
        for name, module in list(sys.modules.items()):
            file = getattr(module, "__file__", None)
            if not file:
                continue
            if any(file.startswith(prefix) for prefix in cls._mounted):
                del sys.modules[name]
                removed += 1
        return removed

    @classmethod
    def mounted(cls) -> list[str]:
        return list(cls._mounted)


class RealContainer:
    """One cold-started function instance executing real handler code."""

    def __init__(
        self,
        container_id: str,
        workspace: Path,
        handler_module: str,
        base_memory_mb: float,
    ) -> None:
        self.container_id = container_id
        self.workspace = workspace
        self.handler_module_name = handler_module
        self.base_memory_mb = base_memory_mb
        self.handler: Any = None
        self.runtime: Any = None
        self.init_ms = 0.0

    def cold_start(self) -> float:
        """Purge, mount, and import the handler; returns init time in ms."""
        ModuleSandbox.purge()
        ModuleSandbox.mount(self.workspace)
        start = time.perf_counter()
        try:
            self.handler = importlib.import_module(self.handler_module_name)
        except ImportError as error:
            raise DeploymentError(
                f"container {self.container_id}: cannot import handler "
                f"{self.handler_module_name!r} from {self.workspace}: {error}"
            ) from error
        self.init_ms = (time.perf_counter() - start) * 1000.0
        self.runtime = sys.modules.get("_slimstart_runtime")
        return self.init_ms

    def invoke(self, entry: str, payload: Any = None) -> tuple[Any, float]:
        """Call one entry function; returns ``(result, exec_ms)``."""
        if self.handler is None:
            raise DeploymentError(f"container {self.container_id} not initialized")
        try:
            function = getattr(self.handler, entry)
        except AttributeError:
            raise DeploymentError(
                f"handler {self.handler_module_name!r} has no entry {entry!r}"
            ) from None
        start = time.perf_counter()
        result = function(payload)
        exec_ms = (time.perf_counter() - start) * 1000.0
        return result, exec_ms

    def memory_mb(self) -> float:
        """Container memory: base runtime + loaded synthetic modules."""
        loaded_kb = self.runtime.memory_kb() if self.runtime is not None else 0.0
        return self.base_memory_mb + loaded_kb / 1024.0
