"""Multi-region cluster federation with latency-aware routing.

One :class:`~repro.faas.cluster.ClusterPlatform` answers single-region
fleet questions; production deployments run *many* regions, and the
interesting behaviour — offloading, locality, failover — lives in the
routing layer between them.  This module federates several per-region
clusters behind one gateway:

* :class:`RegionTopology` names the regions, carries the inter-region
  network latency matrix, and records per-region platform/fleet
  overrides (a region can have a smaller fleet or slower control plane).
* :class:`RegionFederation` owns one :class:`ClusterPlatform` per region,
  all sharing a single :class:`~repro.common.clock.VirtualClock`.  A
  request submitted at origin time ``t`` is routed immediately (the
  policy sees fleet state advanced to ``t``), then *delivered* to the
  chosen region at ``t + latency/1000`` through the federation's own
  delivery heap — so every region observes arrivals in global time order
  and per-region :class:`~repro.faas.cluster.FleetStats` stay directly
  comparable.
* Routing policies are pluggable (:class:`RoutingPolicy`):
  :class:`RoundRobinPolicy` spreads blindly, :class:`LeastLoadedPolicy`
  follows queued + in-flight pressure, and :class:`LocalityPolicy` keeps
  traffic in its origin region until a spillover threshold (or the
  region's load-shedder) pushes it to the nearest alternative.  All
  three fail over away from a region whose bounded queues would shed the
  request while another region still accepts.
* :class:`FederatedGateway` extends :class:`~repro.faas.gateway.Gateway`
  so region-tagged schedules (``(arrival_s, entry, region)`` from
  :func:`repro.workloads.arrival.merge_tagged_schedules`) replay over the
  same function-URL surface the single-cluster path uses.

Everything stays deterministic: per-region platforms derive their jitter
seeds from ``(seed, "region", name)``, policies break ties by latency
then region name, and identical seeds + schedules reproduce bit-identical
records.  See ``benchmarks/test_fig_multiregion_routing.py`` for the
policy-comparison experiment this enables.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.common.clock import VirtualClock
from repro.common.errors import DeploymentError, SpecError, WorkloadError
from repro.common.rng import derive_seed
from repro.faas.cluster import ClusterPlatform, FleetConfig, FleetStats, _StreamSinks
from repro.faas.events import InvocationRecord
from repro.faas.gateway import Gateway
from repro.faas.sim import SimAppConfig, SimPlatformConfig
from repro.metrics import PricingModel, RoutingSummary, WindowAccumulator, WindowedSummary
from repro.plan import DeferralPlan


@dataclass(frozen=True)
class RegionSpec:
    """One region: a name plus optional platform/fleet overrides.

    Attributes:
        name: Region identifier (e.g. ``"us-east"``); unique per topology.
        platform: Region-specific platform cost constants; ``None`` uses
            the federation-wide default (regions can model slower control
            planes via a larger ``cold_platform_ms``).
        fleet: Region-specific default fleet configuration; ``None`` uses
            the federation-wide default.  Regions can be capacity-starved
            via a smaller ``max_containers`` — or run a different
            autoscaler entirely via ``FleetConfig.policy`` (e.g. a
            panic-window scaler in a bursty region while the rest of the
            topology stays per-request).
    """

    name: str
    platform: SimPlatformConfig | None = None
    fleet: FleetConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("region name must be non-empty")


class RegionTopology:
    """Named regions plus the inter-region network latency matrix.

    ``latency_ms`` maps ``(src, dst)`` pairs to one-way network latency in
    milliseconds.  Lookups fall back to the reversed pair (symmetric
    links), then to ``default_ms``; a region reaches itself in 0 ms unless
    an explicit ``(r, r)`` entry says otherwise.
    """

    def __init__(
        self,
        regions: Sequence[RegionSpec | str],
        latency_ms: Mapping[tuple[str, str], float] | None = None,
        default_ms: float = 0.0,
    ) -> None:
        self.regions: tuple[RegionSpec, ...] = tuple(
            region if isinstance(region, RegionSpec) else RegionSpec(region)
            for region in regions
        )
        if not self.regions:
            raise SpecError("topology needs at least one region")
        names = [spec.name for spec in self.regions]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate region names: {names}")
        if default_ms < 0:
            raise SpecError(f"negative default latency: {default_ms}")
        self.default_ms = default_ms
        self._names = tuple(names)
        self._known = frozenset(names)
        self._specs = {spec.name: spec for spec in self.regions}
        self._latency: dict[tuple[str, str], float] = {}
        for (src, dst), value in (latency_ms or {}).items():
            if src not in self._known or dst not in self._known:
                raise SpecError(f"latency entry references unknown region: {(src, dst)}")
            if value < 0:
                raise SpecError(f"negative latency for {(src, dst)}: {value}")
            self._latency[(src, dst)] = float(value)

    @classmethod
    def fully_connected(
        cls,
        regions: Sequence[RegionSpec | str],
        default_ms: float,
    ) -> "RegionTopology":
        """Uniform mesh: every distinct pair is ``default_ms`` apart."""
        return cls(regions, latency_ms=None, default_ms=default_ms)

    def names(self) -> tuple[str, ...]:
        return self._names

    def spec(self, name: str) -> RegionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise SpecError(f"unknown region: {name!r}") from None

    def latency_ms(self, src: str, dst: str) -> float:
        """One-way network latency from ``src`` to ``dst``."""
        if src not in self._known or dst not in self._known:
            raise SpecError(f"unknown region in latency lookup: {(src, dst)}")
        if (src, dst) in self._latency:
            return self._latency[(src, dst)]
        if (dst, src) in self._latency:
            return self._latency[(dst, src)]
        if src == dst:
            return 0.0
        return self.default_ms

    def nearest(self, origin: str) -> list[str]:
        """All regions ordered by latency from ``origin`` (origin first,
        ties broken by name for determinism)."""
        return sorted(
            self.names(), key=lambda name: (self.latency_ms(origin, name), name)
        )


@dataclass(frozen=True)
class RegionState:
    """A routing policy's view of one region at decision time.

    Attributes:
        name: Region identifier.
        load: Queued + in-flight requests for the routed application
            (:meth:`ClusterPlatform.load`).
        accepts: Whether the region's load-shedder would admit one more
            arrival (:meth:`ClusterPlatform.accepts`).
        latency_ms: One-way network latency from the request's origin.
    """

    name: str
    load: int
    accepts: bool
    latency_ms: float


class RoutingPolicy:
    """Picks the serving region for each request.

    ``choose`` receives the origin region and one :class:`RegionState`
    per region (in topology order, state advanced to the request's origin
    time) and returns the destination region's name.  Implementations
    must be deterministic: any internal state (e.g. a round-robin cursor)
    must evolve identically for identical request sequences.
    """

    name = "abstract"

    def choose(self, origin: str, states: Sequence[RegionState]) -> str:
        raise NotImplementedError  # pragma: no cover - interface

    @staticmethod
    def _accepting(states: Sequence[RegionState]) -> Sequence[RegionState]:
        """Cross-region failover: never pick a shedding region while
        another accepts.  When every region sheds, all are candidates
        (the request is doomed either way; keep the base ordering)."""
        accepting = [state for state in states if state.accepts]
        return accepting or states


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through regions in topology order, skipping shedding ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = itertools.count()

    def choose(self, origin: str, states: Sequence[RegionState]) -> str:
        start = next(self._cursor) % len(states)
        rotation = [states[(start + offset) % len(states)] for offset in range(len(states))]
        return self._accepting(rotation)[0].name


class LeastLoadedPolicy(RoutingPolicy):
    """Join the shortest queue: minimal queued + in-flight demand.

    Ties break toward the origin-nearest region, then by name, so the
    policy degrades into locality when the fleet is idle.
    """

    name = "least-loaded"

    def choose(self, origin: str, states: Sequence[RegionState]) -> str:
        return min(
            self._accepting(states),
            key=lambda state: (state.load, state.latency_ms, state.name),
        ).name


class LocalityPolicy(RoutingPolicy):
    """Serve in the origin region; spill over only under pressure.

    Attributes:
        spillover_load: Origin load (queued + in-flight) at which traffic
            spills to the nearest region whose load is below the same
            threshold.  ``None`` disables spillover entirely.
        failover: Leave a shedding origin for the nearest accepting
            region.  With ``failover=False`` and ``spillover_load=None``
            the policy is *strict* locality — every request stays home,
            which makes a federated replay equal independent single-region
            replays (the property ``tests/property/test_region_properties.py``
            pins down).
    """

    name = "locality"

    def __init__(
        self, spillover_load: int | None = None, failover: bool = True
    ) -> None:
        if spillover_load is not None and spillover_load < 1:
            raise SpecError(f"spillover_load must be >= 1: {spillover_load}")
        self.spillover_load = spillover_load
        self.failover = failover

    def choose(self, origin: str, states: Sequence[RegionState]) -> str:
        by_name = {state.name: state for state in states}
        home = by_name.get(origin)
        if home is None:  # app not deployed at the origin: nearest accepting
            return min(
                self._accepting(states),
                key=lambda state: (state.latency_ms, state.name),
            ).name
        others = sorted(
            (state for state in states if state.name != origin),
            key=lambda state: (state.latency_ms, state.name),
        )
        if self.failover and not home.accepts:
            for state in others:
                if state.accepts:
                    return state.name
            return origin
        if self.spillover_load is not None and home.load >= self.spillover_load:
            for state in others:
                if state.accepts and state.load < self.spillover_load:
                    return state.name
        return origin


#: CLI-facing policy registry (see ``slimstart regions --policy``).
POLICY_NAMES = ("round-robin", "least-loaded", "locality")


def make_policy(name: str, spillover_load: int | None = None) -> RoutingPolicy:
    """Build a routing policy from its CLI name."""
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "least-loaded":
        return LeastLoadedPolicy()
    if name == "locality":
        return LocalityPolicy(spillover_load=spillover_load)
    raise SpecError(f"unknown routing policy: {name!r} (choose from {POLICY_NAMES})")


@dataclass(frozen=True)
class RouteAssignment:
    """One routing decision: where a request originated and was served.

    Attributes:
        app: Application name.
        entry: Entry point name.
        origin: Region the request arrived at the gateway from.
        region: Region the policy selected to serve it.
        at: Origin time (gateway-clock seconds).
        network_ms: One-way latency charged for the forwarding hop
            (0 when served locally).
    """

    app: str
    entry: str
    origin: str
    region: str
    at: float
    network_ms: float


@dataclass(frozen=True)
class _Delivery:
    region: str
    app: str
    entry: str


class RegionFederation:
    """Per-region clusters replayed on one shared virtual-time loop.

    The federation is the multi-region analogue of
    :class:`ClusterPlatform` and plugs into the same deferred-routing
    gateway path: it exposes ``submit`` (with an extra ``origin``) and
    ``run``.  Routing decisions happen at origin time against live fleet
    state; the chosen region receives the arrival after the inter-region
    network latency, via a federation-level delivery heap that keeps all
    per-region event processing in global time order.
    """

    def __init__(
        self,
        topology: RegionTopology,
        policy: RoutingPolicy | None = None,
        platform: SimPlatformConfig | None = None,
        fleet: FleetConfig | None = None,
        seed: int = 0,
        clock: VirtualClock | None = None,
    ) -> None:
        self.topology = topology
        self.policy = policy or RoundRobinPolicy()
        self.clock = clock or VirtualClock()
        self.seed = seed
        self.platforms: dict[str, ClusterPlatform] = {
            spec.name: ClusterPlatform(
                config=spec.platform or platform,
                fleet=spec.fleet or fleet,
                clock=self.clock,
                seed=derive_seed(seed, "region", spec.name),
            )
            for spec in topology.regions
        }
        self.assignments: list[RouteAssignment] = []
        self._deliveries: list[tuple[float, int, _Delivery]] = []
        self._delivery_seq = itertools.count()
        self._last_submit = self.clock.now()
        self._record_marks: dict[tuple[str, str], int] = {}
        #: Requests routed to each (region, app), maintained incrementally
        #: so :meth:`served_counts` never scans the assignment list (and
        #: keeps working in streaming mode, where assignments are not
        #: retained at all).
        self._served: dict[tuple[str, str], int] = {}
        self._streaming = False
        #: Routed-but-undelivered arrivals per (region, app): requests
        #: still on the wire.  Policies must see them, or near-simultaneous
        #: submissions over a slow link would all pile onto the region that
        #: looked empty at decision time.
        self._pending: dict[tuple[str, str], int] = {}

    # -- deployment --------------------------------------------------------

    def deploy(
        self,
        config: SimAppConfig,
        plan: DeferralPlan | None = None,
        fleet: FleetConfig | None = None,
        regions: Iterable[str] | None = None,
    ) -> str:
        """Deploy an application to every region (or a named subset)."""
        targets = tuple(regions) if regions is not None else self.topology.names()
        for name in targets:
            self.platform(name).deploy(config, plan=plan, fleet=fleet)
        return config.name

    def platform(self, region: str) -> ClusterPlatform:
        """The one region's underlying cluster (for inspection/tests)."""
        try:
            return self.platforms[region]
        except KeyError:
            raise SpecError(f"unknown region: {region!r}") from None

    def app_names(self) -> list[str]:
        names: set[str] = set()
        for platform in self.platforms.values():
            names.update(platform.app_names())
        return sorted(names)

    # -- traffic -----------------------------------------------------------

    def submit(
        self, name: str, entry: str, at: float, origin: str | None = None
    ) -> str:
        """Route one arrival; returns the region chosen to serve it.

        Advances every region's event loop to ``at`` first, so the policy
        decides against fleet state that is current at the request's
        origin time, then schedules delivery at ``at + latency/1000``.
        Origin times must be non-decreasing across calls (replay order).
        """
        origin_name = origin if origin is not None else self.topology.names()[0]
        self.topology.spec(origin_name)  # validate
        if at < self._last_submit:
            raise WorkloadError(
                f"origin time {at} precedes an earlier submission ({self._last_submit})"
            )
        self._last_submit = at
        self._advance(at)
        states = [
            RegionState(
                name=region,
                load=self.platforms[region].load(name)
                + self._pending.get((region, name), 0),
                accepts=self.platforms[region].accepts(
                    name, at=at, extra=self._pending.get((region, name), 0)
                ),
                latency_ms=self.topology.latency_ms(origin_name, region),
            )
            for region in self.topology.names()
            if name in self.platforms[region].app_names()
        ]
        if not states:
            raise DeploymentError(f"app {name!r} is deployed in no region")
        chosen = self.policy.choose(origin_name, states)
        if chosen not in {state.name for state in states}:
            raise SpecError(
                f"policy {self.policy.name!r} chose invalid region {chosen!r}"
            )
        network_ms = self.topology.latency_ms(origin_name, chosen)
        self._served[(chosen, name)] = self._served.get((chosen, name), 0) + 1
        if not self._streaming:
            # Streaming replays must not retain one RouteAssignment per
            # request; they report routing through served_counts() and
            # the windowed accumulator instead of routing_summary().
            self.assignments.append(
                RouteAssignment(
                    app=name,
                    entry=entry,
                    origin=origin_name,
                    region=chosen,
                    at=at,
                    network_ms=network_ms,
                )
            )
        heapq.heappush(
            self._deliveries,
            (
                at + network_ms / 1000.0,
                next(self._delivery_seq),
                _Delivery(region=chosen, app=name, entry=entry),
            ),
        )
        self._pending[(chosen, name)] = self._pending.get((chosen, name), 0) + 1
        return chosen

    def run(self, until: float | None = None) -> list[InvocationRecord]:
        """Deliver pending forwards and drain every region's event loop.

        Returns the records newly completed by this call across all
        regions, in completion order (mirrors
        :meth:`ClusterPlatform.run`).
        """
        while self._deliveries and (until is None or self._deliveries[0][0] <= until):
            when, _, delivery = heapq.heappop(self._deliveries)
            self._deliver(when, delivery)
        for platform in self.platforms.values():
            platform.run(until=until)
        produced: list[InvocationRecord] = []
        for region, platform in self.platforms.items():
            for app in platform.app_names():
                records = platform.records(app)
                mark = self._record_marks.get((region, app), 0)
                produced.extend(records[mark:])
                self._record_marks[(region, app)] = len(records)
        produced.sort(key=lambda record: (record.timestamp + record.e2e_ms / 1000.0))
        return produced

    def run_stream(
        self,
        arrivals: Iterable[tuple[float, str, str, str | None]],
        accumulator: WindowAccumulator,
        on_record: Callable[[InvocationRecord], None] | None = None,
    ) -> WindowedSummary:
        """Consume a region-tagged arrival stream at bounded memory.

        The federated analogue of
        :meth:`~repro.faas.cluster.ClusterPlatform.run_stream`:
        ``arrivals`` yields ``(arrival_s, app, entry, origin)`` in
        non-decreasing origin-time order (e.g. a compiled trace run
        through :func:`repro.workloads.replay.assign_regions`).  Each
        arrival is routed at its origin time — :meth:`submit` already
        advances every region to that instant, so the stream drains
        incrementally — while completed records, shed arrivals, and
        container retirements from *all* regions fold into one shared
        ``accumulator``.  Per-request routing assignments are not
        retained (see :meth:`served_counts` for the O(regions × apps)
        view); records attribute to the window of their *regional*
        arrival, so a forwarded request's wire time shifts its window
        exactly as it shifts its regional timestamp.
        """
        if self._streaming or any(
            platform._stream is not None for platform in self.platforms.values()
        ):
            raise WorkloadError("a streaming replay is already in progress")
        sinks = _StreamSinks.into(accumulator, on_record)
        self._streaming = True
        for platform in self.platforms.values():
            platform._stream = sinks
        try:
            for at, name, entry, origin in arrivals:
                accumulator.observe_arrival(at)
                self.submit(name, entry, at=at, origin=origin)
            self.run()
            for platform in self.platforms.values():
                platform._flush_provisioned()
        finally:
            self._streaming = False
            for platform in self.platforms.values():
                platform._stream = None
        return accumulator.finalize()

    def _advance(self, to: float) -> None:
        """Process all regional events with timestamps <= ``to``.

        Deliveries due by ``to`` are injected in heap order before each
        region drains, so regional arrival streams stay non-decreasing.
        """
        while self._deliveries and self._deliveries[0][0] <= to:
            when, _, delivery = heapq.heappop(self._deliveries)
            self._deliver(when, delivery)
        for platform in self.platforms.values():
            platform.run(until=to)

    def _deliver(self, when: float, delivery: _Delivery) -> None:
        """Hand one forwarded arrival to its region at its delivery time.

        All regions first drain their events up to ``when`` so the
        arrival lands on fleet state that is current in global time.
        """
        for platform in self.platforms.values():
            platform.run(until=when)
        self.platforms[delivery.region].submit(delivery.app, delivery.entry, at=when)
        self._pending[(delivery.region, delivery.app)] -= 1

    # -- results -----------------------------------------------------------

    def pending(self, region: str, name: str) -> int:
        """Routed-but-undelivered arrivals for one region/app (on the wire)."""
        return self._pending.get((region, name), 0)

    def region_stats(
        self, name: str, pricing: PricingModel | None = None
    ) -> dict[str, FleetStats]:
        """Per-region :class:`FleetStats` for one app (served regions only).

        ``pricing`` configures every region's dollar view, so federated
        experiments can total cost across the topology under one tariff.
        """
        stats: dict[str, FleetStats] = {}
        for region in self.topology.names():
            platform = self.platforms[region]
            if name in platform.app_names() and platform.records(name):
                stats[region] = platform.fleet_stats(name, pricing=pricing)
        return stats

    def served_counts(self, name: str | None = None) -> dict[str, int]:
        """Requests routed to each region (including not-yet-delivered)."""
        counts = {region: 0 for region in self.topology.names()}
        for (region, app), count in self._served.items():
            if name is None or app == name:
                counts[region] += count
        return counts

    def routing_summary(self) -> RoutingSummary:
        """Locality/forwarding view of every routing decision so far."""
        return RoutingSummary.from_assignments(
            (a.origin, a.region, a.network_ms) for a in self.assignments
        )


@dataclass
class FederatedGateway(Gateway):
    """Function-URL gateway over a :class:`RegionFederation`.

    Extends the deferred-routing path (:meth:`Gateway.submit` /
    :meth:`submit_schedule`) with an ``origin`` region per request, so
    region-tagged schedules replay through the same URL surface and the
    workload monitor observes arrivals exactly as in the single-cluster
    setup.  Synchronous :meth:`Gateway.request` is not supported — the
    federation is deferred-only.
    """

    platform: RegionFederation = field(default=None)  # type: ignore[assignment]

    def request(self, path: str, payload=None, at: float | None = None):
        raise DeploymentError(
            "RegionFederation does not serve synchronous requests; "
            "use submit()/submit_schedule() and run()"
        )

    def submit(self, path: str, at: float, origin: str | None = None) -> list:
        """Route one deferred arrival, tagged with its origin region."""
        route = self._routes.get(path)
        if route is None:
            raise DeploymentError(f"no route for path {path!r}")
        self.platform.submit(route.app, route.entry, at=at, origin=origin)
        self._hits[path] = self._hits.get(path, 0) + 1
        if self.monitor is not None:
            return self.monitor.observe(route.entry, at)
        return []

    def submit_schedule(
        self,
        app: str,
        schedule: Iterable[tuple[float, str] | tuple[float, str, str]],
    ) -> list:
        """Submit a schedule whose items may carry an origin region.

        Accepts both plain ``(arrival_s, entry)`` items (origin defaults
        to the topology's first region) and region-tagged
        ``(arrival_s, entry, region)`` items from
        :func:`repro.workloads.arrival.merge_tagged_schedules`.
        """
        decisions: list = []
        for item in schedule:
            at, entry = item[0], item[1]
            origin = item[2] if len(item) > 2 else None
            decisions.extend(self.submit(f"/{app}/{entry}", at, origin=origin))
        return decisions

    def submit_stream(self, stream, accumulator, on_record=None):
        """Stream ``(arrival_s, path[, origin])`` through the federation.

        The region-tagged analogue of :meth:`Gateway.submit_stream`:
        items may carry an origin region (the shape
        :func:`repro.workloads.replay.as_paths` produces from an
        :func:`~repro.workloads.replay.assign_regions`-tagged stream);
        untagged items originate in the topology's first region.  Routes
        each arrival (hit counts, monitor) and delegates to
        :meth:`RegionFederation.run_stream`, returning the finalized
        :class:`~repro.metrics.WindowedSummary`.
        """

        arrivals = (
            (at, app, entry, extras[0] if extras else None)
            for at, app, entry, *extras in self._route_arrivals(stream)
        )
        return self.platform.run_stream(arrivals, accumulator, on_record=on_record)


def replay_federated_workload(
    federation: RegionFederation,
    gateway: FederatedGateway,
    schedule: list[tuple[float, str, str]],
    app: str,
) -> list[InvocationRecord]:
    """Replay a region-tagged schedule through the federated gateway.

    The multi-region analogue of
    :func:`repro.faas.cluster.replay_cluster_workload`: routes each
    arrival over the conventional ``/<app>/<entry>`` URL with its origin
    region, then drains every region's event loop.
    """
    gateway.submit_schedule(app, schedule)
    return federation.run()
