"""Multi-region cluster federation with latency-aware routing.

One :class:`~repro.faas.cluster.ClusterPlatform` answers single-region
fleet questions; production deployments run *many* regions, and the
interesting behaviour — offloading, locality, failover — lives in the
routing layer between them.  This module federates several per-region
clusters behind one gateway:

* :class:`RegionTopology` names the regions, carries the inter-region
  network latency matrix, and records per-region platform/fleet
  overrides (a region can have a smaller fleet or slower control plane).
* :class:`RegionFederation` owns one :class:`ClusterPlatform` per region,
  all sharing a single :class:`~repro.common.clock.VirtualClock`.  A
  request submitted at origin time ``t`` is routed immediately (the
  policy sees fleet state advanced to ``t``), then *delivered* to the
  chosen region at ``t + latency/1000`` through the federation's own
  delivery heap — so every region observes arrivals in global time order
  and per-region :class:`~repro.faas.cluster.FleetStats` stay directly
  comparable.
* Routing policies are pluggable (:class:`RoutingPolicy`):
  :class:`RoundRobinPolicy` spreads blindly, :class:`LeastLoadedPolicy`
  follows queued + in-flight pressure, and :class:`LocalityPolicy` keeps
  traffic in its origin region until a spillover threshold (or the
  region's load-shedder) pushes it to the nearest alternative.  All
  three fail over away from a region whose bounded queues would shed the
  request while another region still accepts.
* :class:`FederatedGateway` extends :class:`~repro.faas.gateway.Gateway`
  so region-tagged schedules (``(arrival_s, entry, region)`` from
  :func:`repro.workloads.arrival.merge_tagged_schedules`) replay over the
  same function-URL surface the single-cluster path uses.

Everything stays deterministic: per-region platforms derive their jitter
seeds from ``(seed, "region", name)``, policies break ties by latency
then region name, and identical seeds + schedules reproduce bit-identical
records.  See ``benchmarks/test_fig_multiregion_routing.py`` for the
policy-comparison experiment this enables.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.common.clock import VirtualClock
from repro.common.errors import DeploymentError, SpecError, WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.faas.cluster import ClusterPlatform, FleetConfig, FleetStats, _StreamSinks
from repro.faas.events import InvocationRecord
from repro.faas.gateway import Gateway
from repro.faas.sim import SimAppConfig, SimPlatformConfig
from repro.metrics import (
    DEFAULT_QOS_CLASS,
    PricingModel,
    QoSClass,
    RoutingSummary,
    WindowAccumulator,
    WindowedSummary,
    qos_registry,
)
from repro.plan import DeferralPlan

#: Sentinel region name a routing policy returns to *intentionally drop*
#: a request (the third arm of the probabilistic local/offload/drop mix).
#: The federation charges the request's QoS drop penalty and never
#: delivers it anywhere.  Not a valid region name in any topology.
DROP = "__drop__"


@dataclass(frozen=True)
class RegionSpec:
    """One region: a name plus optional platform/fleet overrides.

    Attributes:
        name: Region identifier (e.g. ``"us-east"``); unique per topology.
        platform: Region-specific platform cost constants; ``None`` uses
            the federation-wide default (regions can model slower control
            planes via a larger ``cold_platform_ms``).
        fleet: Region-specific default fleet configuration; ``None`` uses
            the federation-wide default.  Regions can be capacity-starved
            via a smaller ``max_containers`` — or run a different
            autoscaler entirely via ``FleetConfig.policy`` (e.g. a
            panic-window scaler in a bursty region while the rest of the
            topology stays per-request).
        tier: Capacity tier label, ``"edge"`` or ``"cloud"``.  Purely
            descriptive to the federation (capacity comes from ``fleet``),
            but visible to routing policies through
            :attr:`RegionState.tier` so tier-aware policies can treat a
            tight edge site differently from deep cloud capacity.
    """

    name: str
    platform: SimPlatformConfig | None = None
    fleet: FleetConfig | None = None
    tier: str = "cloud"

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("region name must be non-empty")
        if self.tier not in ("edge", "cloud"):
            raise SpecError(f"unknown region tier: {self.tier!r}")


class RegionTopology:
    """Named regions plus the inter-region network latency matrix.

    ``latency_ms`` maps ``(src, dst)`` pairs to one-way network latency in
    milliseconds.  Lookups fall back to the reversed pair (symmetric
    links), then to ``default_ms``; a region reaches itself in 0 ms unless
    an explicit ``(r, r)`` entry says otherwise.
    """

    def __init__(
        self,
        regions: Sequence[RegionSpec | str],
        latency_ms: Mapping[tuple[str, str], float] | None = None,
        default_ms: float = 0.0,
    ) -> None:
        self.regions: tuple[RegionSpec, ...] = tuple(
            region if isinstance(region, RegionSpec) else RegionSpec(region)
            for region in regions
        )
        if not self.regions:
            raise SpecError("topology needs at least one region")
        names = [spec.name for spec in self.regions]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate region names: {names}")
        if default_ms < 0:
            raise SpecError(f"negative default latency: {default_ms}")
        self.default_ms = default_ms
        self._names = tuple(names)
        self._known = frozenset(names)
        self._specs = {spec.name: spec for spec in self.regions}
        self._latency: dict[tuple[str, str], float] = {}
        for (src, dst), value in (latency_ms or {}).items():
            if src not in self._known or dst not in self._known:
                raise SpecError(f"latency entry references unknown region: {(src, dst)}")
            if value < 0:
                raise SpecError(f"negative latency for {(src, dst)}: {value}")
            self._latency[(src, dst)] = float(value)

    @classmethod
    def fully_connected(
        cls,
        regions: Sequence[RegionSpec | str],
        default_ms: float,
    ) -> "RegionTopology":
        """Uniform mesh: every distinct pair is ``default_ms`` apart."""
        return cls(regions, latency_ms=None, default_ms=default_ms)

    @classmethod
    def edge_cloud(
        cls,
        edge: Sequence[RegionSpec | str],
        cloud: Sequence[RegionSpec | str],
        uplink_ms: float = 40.0,
        inter_cloud_ms: float = 10.0,
        inter_edge_ms: float | None = None,
    ) -> "RegionTopology":
        """Heterogeneous two-tier topology: tight edge sites + deep cloud.

        Edge regions (tier ``"edge"``) are where traffic originates —
        typically configured with small fleets / tight memory caps via
        their :attr:`RegionSpec.fleet` override — and reach any cloud
        region over ``uplink_ms``.  Cloud regions (tier ``"cloud"``) form
        a fast mesh ``inter_cloud_ms`` apart.  Edge sites talk to each
        other via the cloud by default (``2 * uplink_ms``) unless
        ``inter_edge_ms`` says otherwise.  Specs passed in are re-tagged
        with their tier, so callers can hand plain names or full specs.
        """
        edge_specs = tuple(
            replace(spec, tier="edge")
            if isinstance(spec, RegionSpec)
            else RegionSpec(spec, tier="edge")
            for spec in edge
        )
        cloud_specs = tuple(
            replace(spec, tier="cloud")
            if isinstance(spec, RegionSpec)
            else RegionSpec(spec, tier="cloud")
            for spec in cloud
        )
        if not edge_specs or not cloud_specs:
            raise SpecError("edge_cloud topology needs both tiers populated")
        edge_gap = 2.0 * uplink_ms if inter_edge_ms is None else inter_edge_ms
        latency: dict[tuple[str, str], float] = {}
        for e in edge_specs:
            for c in cloud_specs:
                latency[(e.name, c.name)] = uplink_ms
        for i, a in enumerate(edge_specs):
            for b in edge_specs[i + 1:]:
                latency[(a.name, b.name)] = edge_gap
        for i, a in enumerate(cloud_specs):
            for b in cloud_specs[i + 1:]:
                latency[(a.name, b.name)] = inter_cloud_ms
        return cls(edge_specs + cloud_specs, latency_ms=latency)

    def names(self) -> tuple[str, ...]:
        return self._names

    def spec(self, name: str) -> RegionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise SpecError(f"unknown region: {name!r}") from None

    def latency_ms(self, src: str, dst: str) -> float:
        """One-way network latency from ``src`` to ``dst``."""
        if src not in self._known or dst not in self._known:
            raise SpecError(f"unknown region in latency lookup: {(src, dst)}")
        if (src, dst) in self._latency:
            return self._latency[(src, dst)]
        if (dst, src) in self._latency:
            return self._latency[(dst, src)]
        if src == dst:
            return 0.0
        return self.default_ms

    def nearest(self, origin: str) -> list[str]:
        """All regions ordered by latency from ``origin`` (origin first,
        ties broken by name for determinism)."""
        return sorted(
            self.names(), key=lambda name: (self.latency_ms(origin, name), name)
        )


@dataclass(frozen=True)
class RegionState:
    """A routing policy's view of one region at decision time.

    Attributes:
        name: Region identifier.
        load: Queued + in-flight requests for the routed application
            (:meth:`ClusterPlatform.load`).
        accepts: Whether the region's load-shedder would admit one more
            arrival (:meth:`ClusterPlatform.accepts`).
        latency_ms: One-way network latency from the request's origin.
        tier: The region's capacity tier (:attr:`RegionSpec.tier`).
        capacity: Slots the region can still book for this app — free
            slots on live containers plus bootable containers, minus
            requests already committed but still on the wire.  The
            coupling constraint :class:`ProbabilisticOffloadPolicy`'s LP
            re-solve uses.
    """

    name: str
    load: int
    accepts: bool
    latency_ms: float
    tier: str = "cloud"
    capacity: float = math.inf


class RoutingPolicy:
    """Picks the serving region for each request.

    ``choose`` receives the origin region and one :class:`RegionState`
    per region (in topology order, state advanced to the request's origin
    time) and returns the destination region's name — or :data:`DROP` to
    intentionally drop the request (only meaningful to policies that
    price drops, e.g. :class:`ProbabilisticOffloadPolicy`).  ``at`` is
    the request's origin time (virtual seconds) and ``qos`` its QoS class
    name, both defaulted so QoS-oblivious policies can ignore them.
    Implementations must be deterministic: any internal state (a
    round-robin cursor, a seeded RNG, re-solved probability mixes) must
    evolve identically for identical request sequences.
    """

    name = "abstract"

    def choose(
        self,
        origin: str,
        states: Sequence[RegionState],
        at: float = 0.0,
        qos: str | None = None,
    ) -> str:
        raise NotImplementedError  # pragma: no cover - interface

    @staticmethod
    def _accepting(states: Sequence[RegionState]) -> Sequence[RegionState]:
        """Cross-region failover: never pick a shedding region while
        another accepts.  When every region sheds, all are candidates
        (the request is doomed either way; keep the base ordering)."""
        accepting = [state for state in states if state.accepts]
        return accepting or states


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through regions in topology order, skipping shedding ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = itertools.count()

    def choose(
        self,
        origin: str,
        states: Sequence[RegionState],
        at: float = 0.0,
        qos: str | None = None,
    ) -> str:
        start = next(self._cursor) % len(states)
        rotation = [states[(start + offset) % len(states)] for offset in range(len(states))]
        return self._accepting(rotation)[0].name


class LeastLoadedPolicy(RoutingPolicy):
    """Join the shortest queue: minimal queued + in-flight demand.

    Ties break toward the origin-nearest region, then by name, so the
    policy degrades into locality when the fleet is idle.
    """

    name = "least-loaded"

    def choose(
        self,
        origin: str,
        states: Sequence[RegionState],
        at: float = 0.0,
        qos: str | None = None,
    ) -> str:
        return min(
            self._accepting(states),
            key=lambda state: (state.load, state.latency_ms, state.name),
        ).name


class LocalityPolicy(RoutingPolicy):
    """Serve in the origin region; spill over only under pressure.

    Attributes:
        spillover_load: Origin load (queued + in-flight) at which traffic
            spills to the nearest region whose load is below the same
            threshold.  ``None`` disables spillover entirely.
        failover: Leave a shedding origin for the nearest accepting
            region.  With ``failover=False`` and ``spillover_load=None``
            the policy is *strict* locality — every request stays home,
            which makes a federated replay equal independent single-region
            replays (the property ``tests/property/test_region_properties.py``
            pins down).
    """

    name = "locality"

    def __init__(
        self, spillover_load: int | None = None, failover: bool = True
    ) -> None:
        if spillover_load is not None and spillover_load < 1:
            raise SpecError(f"spillover_load must be >= 1: {spillover_load}")
        self.spillover_load = spillover_load
        self.failover = failover

    def choose(
        self,
        origin: str,
        states: Sequence[RegionState],
        at: float = 0.0,
        qos: str | None = None,
    ) -> str:
        by_name = {state.name: state for state in states}
        home = by_name.get(origin)
        if home is None:  # app not deployed at the origin: nearest accepting
            return min(
                self._accepting(states),
                key=lambda state: (state.latency_ms, state.name),
            ).name
        others = sorted(
            (state for state in states if state.name != origin),
            key=lambda state: (state.latency_ms, state.name),
        )
        if self.failover and not home.accepts:
            for state in others:
                if state.accepts:
                    return state.name
            return origin
        if self.spillover_load is not None and home.load >= self.spillover_load:
            for state in others:
                if state.accepts and state.load < self.spillover_load:
                    return state.name
        return origin


class ProbabilisticOffloadPolicy(RoutingPolicy):
    """Optimizer-driven local/offload/drop mix, re-solved periodically.

    In the style of the faas-offloading-sim exemplar: each QoS class gets
    a probability triple ``(p_local, p_offload, p_drop)``; every request
    draws from its class's triple with a seeded RNG.  The triples are
    re-solved every ``update_interval_s`` of *virtual* time from

    * per-class arrival rates, tracked as an EWMA over re-solve intervals
      (``arrival_alpha`` weighs the newest interval), and
    * the fleet state the federation hands ``choose`` — the local
      region's remaining bookable capacity (the LP's coupling
      constraint) and each candidate's accept/latency state.

    The optimization is a tiny linear program —

    maximize   Σ_c λ_c · (p_L·v_L + p_O·v_O + p_D·v_D)
    subject to Σ_c λ_c · p_L ≤ κ   and each triple on the simplex

    — where ``v_L/v_O/v_D`` are per-class value estimates (utility for an
    in-deadline completion, minus the deadline penalty when the chosen
    arm cannot meet the deadline, minus the drop penalty for the drop
    arm, with offload utility discounted by ``latency_cost_per_ms`` per
    wire millisecond) and ``κ`` converts the local region's bookable
    slots into a request rate via ``service_ms_estimate``.  A single
    coupling constraint makes the LP exactly solvable by a greedy
    fractional fill: every class whose local value beats its best
    alternative keeps local share by descending per-request regret until
    κ is spent; the marginal class gets a fractional ``p_local``; the
    rest take their best alternative (offload, or drop when the drop
    penalty undercuts a certain deadline violation).

    Exactness caveats (see docs/architecture.md): κ is a heuristic —
    bookable slots over an assumed mean service time — and the deadline
    feasibility test budgets ``deadline_slack`` of the deadline for the
    forwarding wire, not a queueing model of the remote region.  The LP
    is exact for the stated objective; the objective itself is an
    estimate refreshed from live state each interval.
    """

    name = "probabilistic"

    def __init__(
        self,
        qos_classes: Iterable[QoSClass] | None = None,
        seed: int = 0,
        update_interval_s: float = 60.0,
        arrival_alpha: float = 0.3,
        service_ms_estimate: float = 200.0,
        deadline_slack: float = 0.5,
        latency_cost_per_ms: float = 0.002,
        allow_drop: bool = True,
    ) -> None:
        if update_interval_s <= 0:
            raise SpecError(f"update interval must be positive: {update_interval_s}")
        if not 0.0 < arrival_alpha <= 1.0:
            raise SpecError(f"arrival_alpha must be in (0, 1]: {arrival_alpha}")
        if service_ms_estimate <= 0:
            raise SpecError(f"service estimate must be positive: {service_ms_estimate}")
        if not 0.0 < deadline_slack <= 1.0:
            raise SpecError(f"deadline_slack must be in (0, 1]: {deadline_slack}")
        self._registry = qos_registry(
            qos_classes if qos_classes is not None else (DEFAULT_QOS_CLASS,)
        )
        self.update_interval_s = update_interval_s
        self.arrival_alpha = arrival_alpha
        self.service_ms_estimate = service_ms_estimate
        self.deadline_slack = deadline_slack
        self.latency_cost_per_ms = latency_cost_per_ms
        self.allow_drop = allow_drop
        self._rng = SeededRNG(derive_seed(seed, "offload"))
        self._rates: dict[str, float] = {}  # EWMA requests/s per class
        self._counts: dict[str, int] = {}  # arrivals in the open interval
        self._interval_start: float | None = None
        #: origin -> class -> (p_local, p_offload, p_drop); cleared at
        #: every interval boundary, re-solved lazily per origin.
        self._mix: dict[str, dict[str, tuple[float, float, float]]] = {}

    def choose(
        self,
        origin: str,
        states: Sequence[RegionState],
        at: float = 0.0,
        qos: str | None = None,
    ) -> str:
        if qos is not None and qos in self._registry:
            cls_name, spec = qos, self._registry[qos]
        else:
            cls_name, spec = DEFAULT_QOS_CLASS.name, DEFAULT_QOS_CLASS
        if self._interval_start is None:
            self._interval_start = at
        while at - self._interval_start >= self.update_interval_s:
            self._close_interval()
        self._counts[cls_name] = self._counts.get(cls_name, 0) + 1
        mix = self._mix.get(origin)
        if mix is None:
            mix = self._mix[origin] = self._solve(origin, states)
        p_local, p_offload, _ = mix.get(cls_name, (1.0, 0.0, 0.0))
        draw = self._rng.random()
        local, offload = self._targets(origin, states, spec)
        if draw < p_local:
            return local.name
        if draw < p_local + p_offload:
            return (offload or local).name
        return DROP

    # -- internals ---------------------------------------------------------

    def _close_interval(self) -> None:
        """Fold the finished interval's counts into the EWMA rates."""
        alpha = self.arrival_alpha
        for name in sorted(self._registry):
            rate = self._counts.get(name, 0) / self.update_interval_s
            previous = self._rates.get(name)
            self._rates[name] = (
                rate
                if previous is None
                else alpha * rate + (1.0 - alpha) * previous
            )
        self._counts.clear()
        self._mix.clear()
        self._interval_start += self.update_interval_s

    def _targets(
        self, origin: str, states: Sequence[RegionState], spec: QoSClass
    ) -> tuple[RegionState, RegionState | None]:
        """The concrete (local, offload) regions for this decision.

        Local is the origin region when the app is deployed there, else
        the nearest region.  Offload is the nearest *accepting* region
        other than local, preferring ones whose wire latency fits the
        class's deadline budget; ``None`` when local is the only region.
        """
        local = next((state for state in states if state.name == origin), None)
        if local is None:
            local = min(states, key=lambda s: (s.latency_ms, s.name))
        budget = spec.deadline_ms * self.deadline_slack
        candidates = sorted(
            (s for s in states if s.name != local.name and s.accepts),
            key=lambda s: (s.latency_ms > budget, s.latency_ms, s.name),
        )
        return local, (candidates[0] if candidates else None)

    def _solve(
        self, origin: str, states: Sequence[RegionState]
    ) -> dict[str, tuple[float, float, float]]:
        """Greedy-exact LP solve for this origin's probability triples."""
        local = next((state for state in states if state.name == origin), None)
        if local is None:
            local = min(states, key=lambda s: (s.latency_ms, s.name))
        kappa = local.capacity * 1000.0 / self.service_ms_estimate
        keep_local: list[tuple[float, str, tuple[float, float, float]]] = []
        mix: dict[str, tuple[float, float, float]] = {}
        for name in sorted(self._registry):
            spec = self._registry[name]
            v_local = spec.utility if local.accepts else -spec.deadline_penalty
            _, offload = self._targets(origin, states, spec)
            if offload is None:
                v_offload = -math.inf
            elif offload.latency_ms <= spec.deadline_ms * self.deadline_slack:
                v_offload = (
                    spec.utility - self.latency_cost_per_ms * offload.latency_ms
                )
            else:
                v_offload = -spec.deadline_penalty
            v_drop = -spec.drop_penalty if self.allow_drop else -math.inf
            if v_offload >= v_drop:
                alternative = (0.0, 1.0, 0.0)
                v_alt = v_offload
            else:
                alternative = (0.0, 0.0, 1.0)
                v_alt = v_drop
            if v_alt == -math.inf or v_local >= v_alt:
                # Local is (weakly) best unconstrained; capacity decides.
                keep_local.append((v_local - v_alt, name, alternative))
            else:
                mix[name] = alternative
        # Fractional-knapsack fill of the local capacity, by descending
        # per-request regret (the exact LP solution for one coupling
        # constraint); ties break by class name for determinism.
        remaining = kappa
        for regret, name, alternative in sorted(
            keep_local, key=lambda item: (-item[0], item[1])
        ):
            rate = self._rates.get(name, 0.0)
            if rate <= remaining:
                mix[name] = (1.0, 0.0, 0.0)
                remaining -= rate
            elif remaining > 0.0:
                share = remaining / rate
                mix[name] = (
                    share,
                    alternative[1] * (1.0 - share),
                    alternative[2] * (1.0 - share),
                )
                remaining = 0.0
            else:
                mix[name] = alternative
        return mix


#: CLI-facing policy registry (see ``slimstart regions --policy`` and
#: ``slimstart replay --routing``).
POLICY_NAMES = ("round-robin", "least-loaded", "locality", "probabilistic")


def make_policy(
    name: str,
    spillover_load: int | None = None,
    qos_classes: Iterable[QoSClass] | None = None,
    seed: int = 0,
) -> RoutingPolicy:
    """Build a routing policy from its CLI name."""
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "least-loaded":
        return LeastLoadedPolicy()
    if name == "locality":
        return LocalityPolicy(spillover_load=spillover_load)
    if name == "probabilistic":
        return ProbabilisticOffloadPolicy(qos_classes=qos_classes, seed=seed)
    raise SpecError(f"unknown routing policy: {name!r} (choose from {POLICY_NAMES})")


@dataclass(frozen=True)
class RouteAssignment:
    """One routing decision: where a request originated and was served.

    Attributes:
        app: Application name.
        entry: Entry point name.
        origin: Region the request arrived at the gateway from.
        region: Region the policy selected to serve it.
        at: Origin time (gateway-clock seconds).
        network_ms: One-way latency charged for the forwarding hop
            (0 when served locally).
    """

    app: str
    entry: str
    origin: str
    region: str
    at: float
    network_ms: float


@dataclass(frozen=True)
class _Delivery:
    region: str
    app: str
    entry: str
    qos: str | None = None
    wire_ms: float = 0.0


class RegionFederation:
    """Per-region clusters replayed on one shared virtual-time loop.

    The federation is the multi-region analogue of
    :class:`ClusterPlatform` and plugs into the same deferred-routing
    gateway path: it exposes ``submit`` (with an extra ``origin``) and
    ``run``.  Routing decisions happen at origin time against live fleet
    state; the chosen region receives the arrival after the inter-region
    network latency, via a federation-level delivery heap that keeps all
    per-region event processing in global time order.
    """

    def __init__(
        self,
        topology: RegionTopology,
        policy: RoutingPolicy | None = None,
        platform: SimPlatformConfig | None = None,
        fleet: FleetConfig | None = None,
        seed: int = 0,
        clock: VirtualClock | None = None,
        qos: Iterable[QoSClass] | None = None,
    ) -> None:
        self.topology = topology
        self.policy = policy or RoundRobinPolicy()
        self.clock = clock or VirtualClock()
        self.seed = seed
        #: Shared QoS registry; every region's platform resolves class
        #: names against the same specs, and the federation charges drop
        #: penalties for requests the routing policy discards.
        self.qos_classes: dict[str, QoSClass] = (
            qos_registry(qos) if qos is not None else {}
        )
        qos_specs = tuple(self.qos_classes.values()) if self.qos_classes else None
        self.platforms: dict[str, ClusterPlatform] = {
            spec.name: ClusterPlatform(
                config=spec.platform or platform,
                fleet=spec.fleet or fleet,
                clock=self.clock,
                seed=derive_seed(seed, "region", spec.name),
                qos=qos_specs,
            )
            for spec in topology.regions
        }
        self.assignments: list[RouteAssignment] = []
        self._deliveries: list[tuple[float, int, _Delivery]] = []
        self._delivery_seq = itertools.count()
        self._last_submit = self.clock.now()
        self._record_marks: dict[tuple[str, str], int] = {}
        #: Requests routed to each (region, app), maintained incrementally
        #: so :meth:`served_counts` never scans the assignment list (and
        #: keeps working in streaming mode, where assignments are not
        #: retained at all).
        self._served: dict[tuple[str, str], int] = {}
        self._streaming = False
        self._stream_sinks: _StreamSinks | None = None
        #: Routed-but-undelivered arrivals per (region, app): requests
        #: still on the wire.  Policies must see them, or near-simultaneous
        #: submissions over a slow link would all pile onto the region that
        #: looked empty at decision time.
        self._pending: dict[tuple[str, str], int] = {}
        #: Requests the routing policy intentionally dropped, per app.
        self._drops: dict[str, int] = {}

    # -- deployment --------------------------------------------------------

    def deploy(
        self,
        config: SimAppConfig,
        plan: DeferralPlan | None = None,
        fleet: FleetConfig | None = None,
        regions: Iterable[str] | None = None,
    ) -> str:
        """Deploy an application to every region (or a named subset)."""
        targets = tuple(regions) if regions is not None else self.topology.names()
        for name in targets:
            self.platform(name).deploy(config, plan=plan, fleet=fleet)
        return config.name

    def platform(self, region: str) -> ClusterPlatform:
        """The one region's underlying cluster (for inspection/tests)."""
        try:
            return self.platforms[region]
        except KeyError:
            raise SpecError(f"unknown region: {region!r}") from None

    def app_names(self) -> list[str]:
        names: set[str] = set()
        for platform in self.platforms.values():
            names.update(platform.app_names())
        return sorted(names)

    # -- traffic -----------------------------------------------------------

    def submit(
        self,
        name: str,
        entry: str,
        at: float,
        origin: str | None = None,
        qos: str | None = None,
    ) -> str:
        """Route one arrival; returns the region chosen to serve it.

        Advances every region's event loop to ``at`` first, so the policy
        decides against fleet state that is current at the request's
        origin time, then schedules delivery at ``at + latency/1000``.
        Origin times must be non-decreasing across calls (replay order).
        ``qos`` tags the request with its QoS class; a policy returning
        :data:`DROP` discards the request here — the class's drop
        penalty is charged (streamed to the accumulator in streaming
        mode, counted in :meth:`dropped_counts` always) and :data:`DROP`
        is returned instead of a region name.
        """
        origin_name = origin if origin is not None else self.topology.names()[0]
        self.topology.spec(origin_name)  # validate
        if qos is not None and qos not in self.qos_classes:
            raise SpecError(
                f"unknown QoS class {qos!r} "
                f"(federation knows {sorted(self.qos_classes)})"
            )
        if at < self._last_submit:
            raise WorkloadError(
                f"origin time {at} precedes an earlier submission ({self._last_submit})"
            )
        self._last_submit = at
        self._advance(at)
        states = [
            RegionState(
                name=region,
                load=self.platforms[region].load(name)
                + self._pending.get((region, name), 0),
                accepts=self.platforms[region].accepts(
                    name, at=at, extra=self._pending.get((region, name), 0)
                ),
                latency_ms=self.topology.latency_ms(origin_name, region),
                tier=self.topology.spec(region).tier,
                capacity=max(
                    0,
                    self.platforms[region].bookable_capacity(name, at=at)
                    - self._pending.get((region, name), 0),
                ),
            )
            for region in self.topology.names()
            if name in self.platforms[region].app_names()
        ]
        if not states:
            raise DeploymentError(f"app {name!r} is deployed in no region")
        chosen = self.policy.choose(origin_name, states, at=at, qos=qos)
        if chosen == DROP:
            self._drops[name] = self._drops.get(name, 0) + 1
            if self._stream_sinks is not None:
                penalty = (
                    self.qos_classes[qos].drop_penalty if qos is not None else 0.0
                )
                self._stream_sinks.shed(at, name, qos, penalty)
            return DROP
        if chosen not in {state.name for state in states}:
            raise SpecError(
                f"policy {self.policy.name!r} chose invalid region {chosen!r}"
            )
        network_ms = self.topology.latency_ms(origin_name, chosen)
        self._served[(chosen, name)] = self._served.get((chosen, name), 0) + 1
        if not self._streaming:
            # Streaming replays must not retain one RouteAssignment per
            # request; they report routing through served_counts() and
            # the windowed accumulator instead of routing_summary().
            self.assignments.append(
                RouteAssignment(
                    app=name,
                    entry=entry,
                    origin=origin_name,
                    region=chosen,
                    at=at,
                    network_ms=network_ms,
                )
            )
        heapq.heappush(
            self._deliveries,
            (
                at + network_ms / 1000.0,
                next(self._delivery_seq),
                _Delivery(
                    region=chosen,
                    app=name,
                    entry=entry,
                    qos=qos,
                    wire_ms=network_ms,
                ),
            ),
        )
        self._pending[(chosen, name)] = self._pending.get((chosen, name), 0) + 1
        return chosen

    def run(self, until: float | None = None) -> list[InvocationRecord]:
        """Deliver pending forwards and drain every region's event loop.

        Returns the records newly completed by this call across all
        regions, in completion order (mirrors
        :meth:`ClusterPlatform.run`).
        """
        while self._deliveries and (until is None or self._deliveries[0][0] <= until):
            when, _, delivery = heapq.heappop(self._deliveries)
            self._deliver(when, delivery)
        for platform in self.platforms.values():
            platform.run(until=until)
        produced: list[InvocationRecord] = []
        for region, platform in self.platforms.items():
            for app in platform.app_names():
                records = platform.records(app)
                mark = self._record_marks.get((region, app), 0)
                produced.extend(records[mark:])
                self._record_marks[(region, app)] = len(records)
        produced.sort(key=lambda record: (record.timestamp + record.e2e_ms / 1000.0))
        return produced

    def run_stream(
        self,
        arrivals: Iterable[tuple[float, str, str, str | None]],
        accumulator: WindowAccumulator,
        on_record: Callable[[InvocationRecord], None] | None = None,
        obs=None,
    ) -> WindowedSummary:
        """Consume a region-tagged arrival stream at bounded memory.

        The federated analogue of
        :meth:`~repro.faas.cluster.ClusterPlatform.run_stream`:
        ``arrivals`` yields ``(arrival_s, app, entry, origin)`` — or
        QoS-tagged ``(arrival_s, app, entry, origin, qos_name)`` — in
        non-decreasing origin-time order (e.g. a compiled trace run
        through :func:`repro.workloads.replay.assign_qos` then
        :func:`repro.workloads.replay.assign_regions`).  Each
        arrival is routed at its origin time — :meth:`submit` already
        advances every region to that instant, so the stream drains
        incrementally — while completed records, shed arrivals, and
        container retirements from *all* regions fold into one shared
        ``accumulator``.  Per-request routing assignments are not
        retained (see :meth:`served_counts` for the O(regions × apps)
        view); records attribute to the window of their *regional*
        arrival, so a forwarded request's wire time shifts its window
        exactly as it shifts its regional timestamp.

        ``obs`` installs one observability sink shared by every region:
        sheds/completions/provisions from all regions tee into it, each
        regional cluster journals its scaling decisions, and cross-region
        forwarding shows up in sampled spans as their ``hop_ms`` phase.
        """
        if self._streaming or any(
            platform._stream is not None for platform in self.platforms.values()
        ):
            raise WorkloadError("a streaming replay is already in progress")
        sinks = _StreamSinks.into(accumulator, on_record, obs=obs)
        self._streaming = True
        self._stream_sinks = sinks
        for platform in self.platforms.values():
            platform._stream = sinks
            platform._obs = obs
        try:
            # Same driver-screened journal flushing as the cluster loop:
            # one float compare per arrival, obs work only at boundaries.
            obs_flush = math.inf if obs is None else obs.next_flush_s
            fed = 0
            for item in arrivals:
                at = item[0]
                if at >= obs_flush:
                    obs.flush_boundary(at, fed)
                    obs_flush = obs.next_flush_s
                fed += 1
                accumulator.observe_arrival(at)
                self.submit(
                    item[1],
                    item[2],
                    at=at,
                    origin=item[3] if len(item) > 3 else None,
                    qos=item[4] if len(item) > 4 else None,
                )
            self.run()
            for platform in self.platforms.values():
                platform._flush_provisioned()
        finally:
            self._streaming = False
            self._stream_sinks = None
            for platform in self.platforms.values():
                platform._stream = None
                platform._obs = None
        return accumulator.finalize()

    def _advance(self, to: float) -> None:
        """Process all regional events with timestamps <= ``to``.

        Deliveries due by ``to`` are injected in heap order before each
        region drains, so regional arrival streams stay non-decreasing.
        """
        while self._deliveries and self._deliveries[0][0] <= to:
            when, _, delivery = heapq.heappop(self._deliveries)
            self._deliver(when, delivery)
        for platform in self.platforms.values():
            platform.run(until=to)

    def _deliver(self, when: float, delivery: _Delivery) -> None:
        """Hand one forwarded arrival to its region at its delivery time.

        All regions first drain their events up to ``when`` so the
        arrival lands on fleet state that is current in global time.
        """
        for platform in self.platforms.values():
            platform.run(until=when)
        self.platforms[delivery.region].submit(
            delivery.app,
            delivery.entry,
            at=when,
            qos=delivery.qos,
            wire_ms=delivery.wire_ms,
        )
        self._pending[(delivery.region, delivery.app)] -= 1

    # -- results -----------------------------------------------------------

    def pending(self, region: str, name: str) -> int:
        """Routed-but-undelivered arrivals for one region/app (on the wire)."""
        return self._pending.get((region, name), 0)

    def dropped_counts(self, name: str | None = None) -> dict[str, int]:
        """Requests the routing policy intentionally dropped, per app."""
        if name is not None:
            return {name: self._drops.get(name, 0)}
        return dict(self._drops)

    def region_stats(
        self, name: str, pricing: PricingModel | None = None
    ) -> dict[str, FleetStats]:
        """Per-region :class:`FleetStats` for one app (served regions only).

        ``pricing`` configures every region's dollar view, so federated
        experiments can total cost across the topology under one tariff.
        """
        stats: dict[str, FleetStats] = {}
        for region in self.topology.names():
            platform = self.platforms[region]
            if name in platform.app_names() and platform.records(name):
                stats[region] = platform.fleet_stats(name, pricing=pricing)
        return stats

    def served_counts(self, name: str | None = None) -> dict[str, int]:
        """Requests routed to each region (including not-yet-delivered)."""
        counts = {region: 0 for region in self.topology.names()}
        for (region, app), count in self._served.items():
            if name is None or app == name:
                counts[region] += count
        return counts

    def routing_summary(self) -> RoutingSummary:
        """Locality/forwarding view of every routing decision so far."""
        return RoutingSummary.from_assignments(
            (a.origin, a.region, a.network_ms) for a in self.assignments
        )


@dataclass
class FederatedGateway(Gateway):
    """Function-URL gateway over a :class:`RegionFederation`.

    Extends the deferred-routing path (:meth:`Gateway.submit` /
    :meth:`submit_schedule`) with an ``origin`` region per request, so
    region-tagged schedules replay through the same URL surface and the
    workload monitor observes arrivals exactly as in the single-cluster
    setup.  Synchronous :meth:`Gateway.request` is not supported — the
    federation is deferred-only.
    """

    platform: RegionFederation = field(default=None)  # type: ignore[assignment]

    def request(self, path: str, payload=None, at: float | None = None):
        raise DeploymentError(
            "RegionFederation does not serve synchronous requests; "
            "use submit()/submit_schedule() and run()"
        )

    def submit(
        self,
        path: str,
        at: float,
        origin: str | None = None,
        qos: str | None = None,
    ) -> list:
        """Route one deferred arrival, tagged with origin region and QoS."""
        route = self._routes.get(path)
        if route is None:
            raise DeploymentError(f"no route for path {path!r}")
        self.platform.submit(route.app, route.entry, at=at, origin=origin, qos=qos)
        self._hits[path] = self._hits.get(path, 0) + 1
        if self.monitor is not None:
            return self.monitor.observe(route.entry, at)
        return []

    def submit_schedule(
        self,
        app: str,
        schedule: Iterable[tuple[float, str] | tuple[float, str, str]],
    ) -> list:
        """Submit a schedule whose items may carry an origin region.

        Accepts both plain ``(arrival_s, entry)`` items (origin defaults
        to the topology's first region) and region-tagged
        ``(arrival_s, entry, region)`` items from
        :func:`repro.workloads.arrival.merge_tagged_schedules`.
        """
        decisions: list = []
        for item in schedule:
            at, entry = item[0], item[1]
            origin = item[2] if len(item) > 2 else None
            decisions.extend(self.submit(f"/{app}/{entry}", at, origin=origin))
        return decisions

    def submit_stream(self, stream, accumulator, on_record=None, obs=None):
        """Stream ``(arrival_s, path[, origin[, qos]])`` through the federation.

        The region-tagged analogue of :meth:`Gateway.submit_stream`:
        items may carry an origin region and a QoS class name (the shape
        :func:`repro.workloads.replay.as_paths` produces from an
        :func:`~repro.workloads.replay.assign_qos` +
        :func:`~repro.workloads.replay.assign_regions`-tagged stream);
        untagged items originate in the topology's first region.  Routes
        each arrival (hit counts, monitor) and delegates to
        :meth:`RegionFederation.run_stream`, returning the finalized
        :class:`~repro.metrics.WindowedSummary`.
        """

        arrivals = (
            (at, app, entry, *extras)
            for at, app, entry, *extras in self._route_arrivals(stream)
        )
        return self.platform.run_stream(
            arrivals, accumulator, on_record=on_record, obs=obs
        )


def replay_federated_workload(
    federation: RegionFederation,
    gateway: FederatedGateway,
    schedule: list[tuple[float, str, str]],
    app: str,
) -> list[InvocationRecord]:
    """Replay a region-tagged schedule through the federated gateway.

    The multi-region analogue of
    :func:`repro.faas.cluster.replay_cluster_workload`: routes each
    arrival over the conventional ``/<app>/<entry>`` URL with its origin
    region, then drains every region's event loop.
    """
    gateway.submit_schedule(app, schedule)
    return federation.run()
