"""Deferral plans: the contract between the analyzer/optimizer and the FaaS
back ends.

A :class:`DeferralPlan` says *which imports become lazy*:

* ``deferred_handler_imports`` — top-level modules the application handler
  no longer imports globally; the optimizer moves these imports into the
  function bodies that first use them.
* ``deferred_library_edges`` — modules whose *eager import edges inside
  library code* are replaced with PEP 562 lazy stubs (e.g. deferring
  ``sligraph.drawing`` inside igraph's ``__init__``).

Both the really-executing testbed (where the plan is applied by actually
rewriting source files) and the virtual-time simulator (where the plan
parameterizes import-closure computation) consume this one type, which is
what keeps the two back ends semantically aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeferralPlan:
    """An immutable set of lazy-loading decisions for one application."""

    app: str
    deferred_handler_imports: frozenset[str] = field(default_factory=frozenset)
    deferred_library_edges: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for dotted in self.deferred_handler_imports | self.deferred_library_edges:
            if not dotted or not all(part.isidentifier() for part in dotted.split(".")):
                raise ValueError(f"invalid dotted module name in plan: {dotted!r}")

    @property
    def is_empty(self) -> bool:
        return not self.deferred_handler_imports and not self.deferred_library_edges

    @property
    def all_deferred(self) -> frozenset[str]:
        """Every module the plan touches, regardless of mechanism."""
        return self.deferred_handler_imports | self.deferred_library_edges

    def merged_with(self, other: "DeferralPlan") -> "DeferralPlan":
        """Union of two plans for the same application."""
        if other.app != self.app:
            raise ValueError(
                f"cannot merge plans for different apps: {self.app!r} vs {other.app!r}"
            )
        return DeferralPlan(
            app=self.app,
            deferred_handler_imports=(
                self.deferred_handler_imports | other.deferred_handler_imports
            ),
            deferred_library_edges=(
                self.deferred_library_edges | other.deferred_library_edges
            ),
        )

    @classmethod
    def empty(cls, app: str) -> "DeferralPlan":
        return cls(app=app)
