"""Shared benchmark fixtures: one cached optimize cycle per application.

Several tables/figures view the same experiment from different angles
(Table II reads speedups, Fig. 8 memory, Fig. 2 the profile bundle), so
cycles run once per session and are memoized here.
"""

from __future__ import annotations

import pytest

from repro.apps import benchmark_apps
from repro.apps.catalog import APP_DEFINITIONS
from repro.apps.model import BenchmarkApp, bench_platform_config
from repro.core.pipeline import PipelineConfig, SimCycleResult, SlimStart
from repro.faas.sim import SimPlatform
from repro.workloads.arrival import poisson_schedule

#: The paper's measurement protocol.
COLD_STARTS = 500
RUNS = 5
PROFILE_RATE_PER_S = 0.3
PROFILE_DURATION_S = 3600.0
PROFILE_SEED = 7


@pytest.fixture(scope="session")
def suite() -> dict[str, BenchmarkApp]:
    return {app.key: app for app in benchmark_apps()}


class CycleRunner:
    """Runs and memoizes one full optimize cycle per application key."""

    def __init__(self, suite: dict[str, BenchmarkApp]) -> None:
        self._suite = suite
        self._results: dict[str, SimCycleResult] = {}
        self.tool = SlimStart(
            PipelineConfig(measure_cold_starts=COLD_STARTS, measure_runs=RUNS)
        )

    def app(self, key: str) -> BenchmarkApp:
        return self._suite[key]

    def result(self, key: str) -> SimCycleResult:
        if key not in self._results:
            app = self._suite[key]
            platform = SimPlatform(config=bench_platform_config())
            schedule = poisson_schedule(
                app.mix,
                rate_per_s=PROFILE_RATE_PER_S,
                duration_s=PROFILE_DURATION_S,
                seed=PROFILE_SEED,
            )
            self._results[key] = self.tool.run_simulated_cycle(
                app.sim_config(), schedule, app.mix, platform=platform
            )
        return self._results[key]

    def all_keys(self) -> list[str]:
        return [definition.key for definition in APP_DEFINITIONS]


@pytest.fixture(scope="session")
def cycles(suite) -> CycleRunner:
    return CycleRunner(suite)


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
