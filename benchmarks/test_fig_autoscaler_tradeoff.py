"""Autoscaler figure — the cold-start-rate vs. $-cost frontier.

The paper's init-time savings are paid out once per cold start, and the
autoscaler policy decides *when* cold starts happen.  This benchmark
replays one identical seeded bursty schedule (short high-rate bursts
over a sparse base rate, with inter-burst gaps longer than the
keep-alive) under the three scaling policies and tabulates the frontier:

* ``per-request`` boots eagerly and retires on plain keep-alive — the
  cheapest fleet, but every burst after a gap pays a fresh round of
  cold starts.
* ``target-utilization`` holds warm headroom proportional to in-flight
  load, absorbing intra-burst ramp-ups with fewer boots.
* ``panic-window`` detects each burst on its short window, scales to the
  burst's demand, and suspends scale-down until the panic period ends —
  so the *next* burst finds a warm fleet.  Lowest cold-start rate,
  highest GB-second bill: the dollars buy latency.

Deterministic under fixed seeds: the whole table reproduces
bit-identically, which is also asserted.
"""

from benchmarks.conftest import print_header
from repro.faas.autoscale import PanicWindow, PerRequest, TargetUtilization
from repro.faas.cluster import ClusterPlatform, FleetConfig, replay_cluster_workload
from repro.faas.gateway import Gateway
from repro.faas.sim import SimPlatformConfig
from repro.metrics import PricingModel
from repro.workloads.arrival import bursty_schedule

KEEP_ALIVE_S = 15.0
DURATION_S = 1800.0
#: Bursts of ~6 s every 60 s: the 54 s inter-burst gap exceeds the
#: keep-alive, so a policy that retires eagerly re-pays boots per burst.
BASE_RATE = 0.2
BURST_RATE = 12.0
PERIOD_S = 60.0
BURST_FRACTION = 0.1

POLICIES = (
    PerRequest(),
    TargetUtilization(target=0.6, scale_to_zero_grace_s=30.0),
    PanicWindow(target=0.6, stable_window_s=60.0, panic_window_s=6.0),
)
#: Price cold starts explicitly so the frontier is visible in one column.
PRICING = PricingModel(cold_start_surcharge=0.000005)


def replay(cycles, policy):
    app = cycles.app("R-GB")
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0,
            runtime_init_ms=30.0,
            warm_platform_ms=1.0,
            record_traces=False,
            jitter_sigma=0.05,
        ),
        fleet=FleetConfig(
            max_containers=64, keep_alive_s=KEEP_ALIVE_S, policy=policy
        ),
        seed=7,
    )
    platform.deploy(app.sim_config())
    gateway = Gateway(platform)
    gateway.expose(app.name, tuple(entry.name for entry in app.entries))
    schedule = bursty_schedule(
        app.mix,
        base_rate_per_s=BASE_RATE,
        burst_rate_per_s=BURST_RATE,
        period_s=PERIOD_S,
        burst_fraction=BURST_FRACTION,
        duration_s=DURATION_S,
        seed=11,
    )
    replay_cluster_workload(platform, gateway, schedule, app.name)
    return platform.fleet_stats(app.name, pricing=PRICING)


def sweep(cycles):
    return {policy.name: replay(cycles, policy) for policy in POLICIES}


def test_autoscaler_cold_start_cost_frontier(benchmark, cycles):
    results = benchmark.pedantic(sweep, args=(cycles,), rounds=1, iterations=1)

    print_header(
        "Autoscaler — cold-start rate vs. $-cost on one bursty schedule "
        f"({DURATION_S:.0f} s, bursts {BURST_RATE:.0f} req/s, "
        f"keep-alive {KEEP_ALIVE_S:.0f} s)"
    )
    print(
        f"{'policy':20s} {'completed':>9s} {'cold rate':>9s} {'queue p95 ms':>12s} "
        f"{'peak ctr':>8s} {'GB-s':>8s} {'$ / 1k req':>10s}"
    )
    for name, stats in results.items():
        print(
            f"{name:20s} {stats.completed:9d} {stats.cold_start_rate:9.4f} "
            f"{stats.queueing.p95_ms:12.2f} {stats.peak_containers:8d} "
            f"{stats.gb_seconds:8.1f} {stats.cost.per_1k_requests:10.6f}"
        )

    eager = results["per-request"]
    panic = results["panic-window"]
    target = results["target-utilization"]

    # Identical traffic in, identical traffic out: no policy sheds on an
    # unbounded queue, so the frontier compares like with like.
    assert eager.completed == panic.completed == target.completed
    assert eager.rejected == panic.rejected == target.rejected == 0

    # The frontier: panic-window buys its lower cold-start rate with a
    # strictly larger GB-second bill than the eager baseline.
    assert panic.cold_start_rate < eager.cold_start_rate / 2
    assert panic.gb_seconds > eager.gb_seconds
    assert panic.cost.total_cost > eager.cost.total_cost

    # Suspending scale-down also removes the boot wait from the tail.
    assert panic.queueing.p95_ms < eager.queueing.p95_ms

    # Target-utilization sits between the extremes on the cost axis.
    assert eager.gb_seconds <= target.gb_seconds <= panic.gb_seconds

    # The dollar view decomposes: compute + requests + surcharged boots.
    for stats in results.values():
        assert stats.cost.total_cost == (
            stats.cost.compute_cost
            + stats.cost.request_cost
            + stats.cost.cold_start_cost
        )
        assert stats.cost.cold_start_cost == (
            stats.containers_spawned * PRICING.cold_start_surcharge
        )


def test_frontier_is_deterministic(cycles):
    one = sweep(cycles)
    two = sweep(cycles)
    assert one == two  # frozen dataclasses: exact float equality
