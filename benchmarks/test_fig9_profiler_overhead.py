"""Fig. 9 — runtime overhead of the SLIMSTART profiler.

Measures really-executing applications with and without the sampling
profiler attached.  Paper: most applications stay within ~10 % overhead.

This is the one experiment that must run on the real testbed (overhead of
a real sampler cannot be simulated), so it uses a representative subset of
the suite at reduced cost scale.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro.apps import benchmark_apps
from repro.core.profiler import ThreadSampler
from repro.faas.local import LocalPlatform

APPS = ("R-GB", "R-SA", "FWB-CML", "R-FC", "FWB-UP", "FWB-JS")
INVOCATIONS = 30
SCALE = 0.02


def measure_app(app, tmp_base, profiled: bool) -> float:
    deployment = app.build_real_workspace(
        tmp_base / f"{app.name}_{'p' if profiled else 'b'}", scale=SCALE
    )
    platform = LocalPlatform()
    platform.deploy(deployment)
    entry = app.entries[0].name
    sampler = ThreadSampler(interval_ms=5.0) if profiled else None
    if sampler:
        sampler.start()
    start = time.perf_counter()
    platform.invoke(app.name, entry)  # cold
    for _ in range(INVOCATIONS - 1):
        platform.invoke(app.name, entry)
    elapsed = time.perf_counter() - start
    if sampler:
        sampler.stop()
    return elapsed


def run_overhead_study(tmp_base):
    ratios = {}
    for app in benchmark_apps(APPS):
        baseline = measure_app(app, tmp_base, profiled=False)
        profiled = measure_app(app, tmp_base, profiled=True)
        ratios[app.key] = profiled / baseline
    return ratios


def test_fig9_profiler_overhead(benchmark, tmp_path):
    ratios = benchmark.pedantic(
        run_overhead_study, args=(tmp_path,), rounds=1, iterations=1
    )

    print_header("Fig. 9 — profiler runtime overhead (real execution)")
    print(f"{'App':10s} {'overhead':>9s}")
    for key, ratio in ratios.items():
        print(f"{key:10s} {ratio - 1.0:8.1%}")
    print(f"\nmax overhead: {max(ratios.values()) - 1.0:.1%} (paper: <= ~10 %)")

    # Sampling keeps overhead modest on every app.  Real-machine noise on
    # a shared box warrants a generous bound; the paper's claim is <=10 %.
    assert all(ratio < 1.25 for ratio in ratios.values())
    median = sorted(ratios.values())[len(ratios) // 2]
    assert median < 1.15
