"""Table II — per-application performance improvements.

Runs the paper's full protocol on every optimizable application: profile a
typical workload, optimize, then measure 500 concurrent cold starts x 5
runs before and after.  Prints the paper's columns side by side with the
measured values; asserts the *shape* (who wins, by roughly what factor).
"""

import pytest

from benchmarks.conftest import print_header
from repro.apps.catalog import OPTIMIZABLE_KEYS


def run_all_cycles(cycles):
    return {key: cycles.result(key) for key in cycles.all_keys()}


def test_table2_summary_of_performance_improvement(benchmark, cycles):
    results = benchmark.pedantic(
        run_all_cycles, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Table II — summary of performance improvement")
    print(
        f"{'App':10s} {'Libs':>4s} {'Mods':>5s} {'Depth':>5s} "
        f"{'Init x':>7s} {'(paper)':>8s} {'E2E x':>6s} {'(paper)':>8s} "
        f"{'p99I x':>6s} {'(paper)':>8s} {'p99E x':>6s} {'(paper)':>8s}"
    )
    for key in OPTIMIZABLE_KEYS:
        app = cycles.app(key)
        paper = app.definition.paper
        s = results[key].speedups
        print(
            f"{key:10s} {app.library_count:4d} {app.module_count:5d} "
            f"{app.average_depth:5.2f} "
            f"{s.init_speedup:7.2f} {paper.init_speedup:8.2f} "
            f"{s.e2e_speedup:6.2f} {paper.e2e_speedup:8.2f} "
            f"{s.p99_init_speedup:6.2f} {paper.p99_init_speedup:8.2f} "
            f"{s.p99_e2e_speedup:6.2f} {paper.p99_e2e_speedup:8.2f}"
        )
    clean = [k for k in results if k not in OPTIMIZABLE_KEYS]
    print(f"\napps with no inefficiency found: {clean} "
          f"({len(OPTIMIZABLE_KEYS)}/{len(results)} optimized, paper: 17/22)")

    # -- shape assertions ---------------------------------------------------
    for key in OPTIMIZABLE_KEYS:
        app = cycles.app(key)
        paper = app.definition.paper
        s = results[key].speedups
        assert s.init_speedup == pytest.approx(paper.init_speedup, rel=0.15), key
        assert s.e2e_speedup == pytest.approx(paper.e2e_speedup, rel=0.15), key
        assert s.init_speedup >= s.e2e_speedup - 0.05, key  # init leads e2e
    # Program information matches the paper exactly.
    for key in OPTIMIZABLE_KEYS:
        app = cycles.app(key)
        assert app.library_count == app.definition.paper.lib_count
        assert app.module_count == app.definition.paper.module_count
    # Headline numbers: best init speedup near 2.30x, best e2e near 2.26x.
    best_init = max(results[k].speedups.init_speedup for k in OPTIMIZABLE_KEYS)
    best_e2e = max(results[k].speedups.e2e_speedup for k in OPTIMIZABLE_KEYS)
    assert best_init == pytest.approx(2.30, rel=0.15)
    assert best_e2e == pytest.approx(2.26, rel=0.15)
    # The five clean apps stay untouched.
    for key in clean:
        assert results[key].plan.is_empty, key
