"""Predictive scaling figure — pre-warming vs panic-reaction on cold rate.

The reactive frontier (``test_fig_trace_replay``) ends at
:class:`~repro.faas.autoscale.PanicWindow`: react to a burst fast, then
hold the fleet.  But reacting — however fast — still pays the cold
starts *at* every diurnal ramp, every day, because the policy only
learns about demand from the requests already queueing behind it.  This
benchmark replays the same seeded 4-day shift-event trace under the
:class:`~repro.faas.forecast.Predictive` policy, which learns the
per-hour arrival series online and boots capacity *ahead* of the wave:

* **panic-window** — the reactive incumbent (burst detection + suspended
  scale-down), the baseline to beat;
* **predictive(ewma)** — pre-warming driven by a level-only forecast;
* **predictive(holt-winters)** — the additive-seasonal model (24
  one-hour windows per season), identical policy knobs, forecaster
  swapped.

Two layers of claims, both virtual-time deterministic (bit-identical on
every machine):

* **Platform frontier** — pre-warming beats panic-reaction on cold-start
  rate at comparable dollars: the EWMA variant is strictly colder than
  panic-window at a strictly lower total cost, and its cold rate in the
  windows right after the hour-36/60 workload shifts is below panic's
  (the forecast hold survives the shift; the panic history has to
  re-learn it burst by burst).
* **Forecast accuracy** — on the same per-app hourly arrival series the
  replay feeds the policies, the seasonal model's one-step error is a
  fraction of the level-only model's on the diurnal steady state, and —
  the recovery claim — within hours of each shift it is back at its
  steady-state baseline while EWMA is still dragging its lag error.

``BENCH_predictive_scaling.json`` (repo root, uploaded as a CI artifact)
records both layers; any drift from the committed numbers fails the run
— re-run and commit the rewritten JSON after an intentional behaviour
change.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from benchmarks.conftest import print_header
from repro.faas.autoscale import PanicWindow, TargetUtilization
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.forecast import EWMAForecaster, HoltWintersForecaster, Predictive
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.metrics import PricingModel, WindowAccumulator
from repro.workloads.replay import DiurnalArrivals, compile_trace
from repro.workloads.trace import TraceGenerator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_predictive_scaling.json"
#: Baseline loaded BEFORE this run overwrites the file.
COMMITTED = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else None

#: The ``test_fig_trace_replay`` workload, verbatim: 10 apps, 4 diurnal
#: days, workload shifts at hours 36 and 60 (window indices 6 and 10).
TRACE = TraceGenerator(
    app_count=10,
    duration_hours=96.0,
    window_hours=6.0,
    mean_requests_per_window=2000.0,
    shift_hours=(36.0, 60.0),
    seed=2025,
)
WINDOW_S = 6 * 3600.0
SCALE = 0.15  # ~50k arrivals: multi-day scale at benchmark-suite runtime
KEEP_ALIVE_S = 60.0
PRICING = PricingModel(cold_start_surcharge=0.000005)

#: One-hour observation windows: 24 per diurnal day, so the seasonal
#: model's period is exactly one day of the trace.
OBS_WINDOW_S = 3600.0
HOURS = int(TRACE.duration_hours)
PREWARM_LEAD_S = 600.0
#: Hold floor: below ~35 forecast arrivals/hour, a full-window hold
#: costs more idle GB-seconds than the cold starts it prevents.
HOLD_MIN_ARRIVALS = 35.0
#: Shared reactive base: demand coverage plus the cold-history fallback.
BASE = TargetUtilization(target=0.6)

FORECASTERS = {
    "ewma": EWMAForecaster(),
    "holt-winters": HoltWintersForecaster(season_windows=24),
}
POLICIES = {
    "panic-window": PanicWindow(
        target=0.6, stable_window_s=600.0, panic_window_s=60.0
    ),
    **{
        f"predictive-{name}": Predictive(
            base=BASE,
            forecaster=forecaster,
            window_s=OBS_WINDOW_S,
            prewarm_lead_s=PREWARM_LEAD_S,
            hold_min_arrivals=HOLD_MIN_ARRIVALS,
        )
        for name, forecaster in FORECASTERS.items()
    },
}

#: The two replay windows immediately after each shift event — where a
#: reactive policy pays to re-learn the new mix and a forecast does not.
SHIFT_WINDOWS = (6, 7, 10, 11)


def make_stream(trace):
    return compile_trace(
        trace, model=DiurnalArrivals(amplitude=0.9), seed=11, scale=SCALE
    )


def replay(trace, policy):
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0,
            runtime_init_ms=30.0,
            warm_platform_ms=1.0,
            record_traces=False,
            jitter_sigma=0.05,
        ),
        fleet=FleetConfig(
            max_containers=6, keep_alive_s=KEEP_ALIVE_S, policy=policy
        ),
        seed=7,
    )
    deploy_trace(platform, trace)
    return platform.run_stream(
        make_stream(trace), WindowAccumulator(window_s=WINDOW_S, pricing=PRICING)
    )


def sweep(trace):
    return {name: replay(trace, policy) for name, policy in POLICIES.items()}


def _shift_recovery(summary):
    """Mean cold-start rate over the post-shift replay windows."""
    rates = [summary.windows[index].cold_start_rate for index in SHIFT_WINDOWS]
    return sum(rates) / len(rates)


def hourly_counts(trace):
    """Per-app hourly arrival counts — the series the window feed sees."""
    counts: dict[str, list[float]] = defaultdict(lambda: [0.0] * HOURS)
    for at, app, *_ in make_stream(trace):
        counts[app][min(HOURS - 1, int(at // OBS_WINDOW_S))] += 1.0
    return counts


def mae_series(forecaster, counts):
    """One-step-ahead mean absolute error per hour, averaged over apps."""
    errors: list[list[float]] = [[] for _ in range(HOURS)]
    for series in counts.values():
        state = forecaster.new_state()
        for hour, actual in enumerate(series):
            predicted = forecaster.forecast(state, 1) if hour else None
            if predicted is not None:
                errors[hour].append(abs(predicted - actual))
            forecaster.observe(state, actual)
    return [sum(e) / len(e) if e else None for e in errors]


def _span(series, lo, hi):
    values = [value for value in series[lo:hi] if value is not None]
    return sum(values) / len(values)


def test_predictive_scaling_frontier(benchmark):
    trace = TRACE.generate()
    results = benchmark.pedantic(sweep, args=(trace,), rounds=1, iterations=1)

    print_header(
        "Predictive scaling — pre-warming vs panic-reaction "
        f"({TRACE.duration_hours:.0f} h trace, shifts at "
        f"{', '.join(f'{h:.0f} h' for h in TRACE.shift_hours)})"
    )
    print(
        f"{'policy':24s} {'arrivals':>8s} {'cold rate':>9s} {'colds':>6s} "
        f"{'GB-s':>9s} {'$ total':>9s} {'$ / 1k req':>10s} {'shift cold':>10s}"
    )
    frontier = {}
    for name, summary in results.items():
        recovery = _shift_recovery(summary)
        frontier[name] = {
            "arrivals": summary.arrivals,
            "cold_start_rate": round(summary.cold_start_rate, 6),
            "cold_starts": summary.cold_starts,
            "gb_seconds": round(summary.gb_seconds, 3),
            "total_cost": round(summary.cost.total_cost, 6),
            "per_1k_requests": round(summary.cost.per_1k_requests, 6),
            "shift_recovery_cold_rate": round(recovery, 6),
            "cold_rate_series": [
                round(window.cold_start_rate, 6) for window in summary.windows
            ],
        }
        print(
            f"{name:24s} {summary.arrivals:8d} {summary.cold_start_rate:9.4f} "
            f"{summary.cold_starts:6d} {summary.gb_seconds:9.0f} "
            f"{summary.cost.total_cost:9.4f} "
            f"{summary.cost.per_1k_requests:10.6f} {recovery:10.4f}"
        )

    panic = results["panic-window"]
    ewma = results["predictive-ewma"]
    seasonal = results["predictive-holt-winters"]

    # Identical compiled stream in: identical traffic everywhere.
    assert (
        panic.series("arrivals")
        == ewma.series("arrivals")
        == seasonal.series("arrivals")
    )
    assert panic.shed == ewma.shed == seasonal.shed == 0

    # The headline: pre-warming beats panic-reaction on cold-start rate
    # at comparable dollars — strictly colder at or below panic's cost.
    assert ewma.cold_start_rate < panic.cold_start_rate, (
        f"predictive-ewma should beat panic-window on cold rate: "
        f"{ewma.cold_start_rate:.4f} vs {panic.cold_start_rate:.4f}"
    )
    assert ewma.cost.total_cost <= panic.cost.total_cost, (
        f"...at comparable cost: ${ewma.cost.total_cost:.4f} vs "
        f"${panic.cost.total_cost:.4f}"
    )
    assert ewma.cold_starts < panic.cold_starts

    # Shift recovery, platform layer: right after the hour-36/60 shifts
    # the forecast hold keeps the fleet warm while the panic history is
    # still re-learning the new mix one burst at a time.
    assert _shift_recovery(ewma) < _shift_recovery(panic)

    # Forecast-accuracy layer, on the very series the window feed sees:
    # the seasonal model anticipates the diurnal swing the level-only
    # model forever lags...
    counts = hourly_counts(trace)
    ewma_mae = mae_series(FORECASTERS["ewma"], counts)
    seasonal_mae = mae_series(FORECASTERS["holt-winters"], counts)
    steady = {
        "ewma": _span(ewma_mae, 24, 36),
        "holt-winters": _span(seasonal_mae, 24, 36),
    }
    assert steady["holt-winters"] < 0.6 * steady["ewma"]
    accuracy = {
        "steady_mae": {k: round(v, 4) for k, v in steady.items()},
        "shifts": {},
    }
    # ...and *recovers* after each shift: within hours its error is back
    # at the steady-state baseline while EWMA still drags its lag error.
    for shift in (int(h) for h in TRACE.shift_hours):
        recovery_span = (shift + 2, shift + 12)
        ewma_recovery = _span(ewma_mae, *recovery_span)
        seasonal_recovery = _span(seasonal_mae, *recovery_span)
        accuracy["shifts"][str(shift)] = {
            "ewma_recovery_mae": round(ewma_recovery, 4),
            "holt_winters_recovery_mae": round(seasonal_recovery, 4),
        }
        assert seasonal_recovery < ewma_recovery
        assert seasonal_recovery <= 1.5 * steady["holt-winters"]

    print_header("Forecast accuracy (one-step MAE, arrivals/hour, 10 apps)")
    print(f"steady day 2: ewma={steady['ewma']:.2f} hw={steady['holt-winters']:.2f}")
    for shift, row in accuracy["shifts"].items():
        print(
            f"post-shift h{shift}+2..+12: ewma={row['ewma_recovery_mae']:.2f} "
            f"hw={row['holt_winters_recovery_mae']:.2f}"
        )

    # Determinism: the frontier is virtual-time exact, so an identical
    # rerun reproduces the summary bit for bit on any machine.
    rerun = replay(trace, POLICIES["predictive-ewma"])
    assert rerun == ewma

    payload = {
        "benchmark": "predictive_scaling",
        "trace": {
            "app_count": TRACE.app_count,
            "duration_hours": TRACE.duration_hours,
            "window_hours": TRACE.window_hours,
            "mean_requests_per_window": TRACE.mean_requests_per_window,
            "shift_hours": list(TRACE.shift_hours),
            "seed": TRACE.seed,
        },
        "scale": SCALE,
        "window_s": WINDOW_S,
        "obs_window_s": OBS_WINDOW_S,
        "prewarm_lead_s": PREWARM_LEAD_S,
        "hold_min_arrivals": HOLD_MIN_ARRIVALS,
        "keep_alive_s": KEEP_ALIVE_S,
        "shift_windows": list(SHIFT_WINDOWS),
        "policies": frontier,
        "forecast_accuracy": accuracy,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwritten to {BENCH_PATH.name}")

    # The numbers are deterministic, so the committed file is an exact
    # pin, not a tolerance band: any drift means scaling behaviour changed.
    if COMMITTED is not None:
        for name, row in COMMITTED["policies"].items():
            for key in ("cold_start_rate", "total_cost"):
                assert frontier[name][key] == row[key], (
                    f"{name} {key} drifted from committed "
                    f"BENCH_predictive_scaling.json: {frontier[name][key]} "
                    f"vs {row[key]} — if intentional, commit the rewritten "
                    f"JSON"
                )


def test_predictive_replay_is_deterministic():
    trace = TRACE.generate()
    policy = POLICIES["predictive-ewma"]
    assert replay(trace, policy) == replay(trace, policy)
