"""Replay throughput benchmark — requests/sec at 1/2/4 shard workers.

Every replay figure in this repo rides on the cluster event loop, but
until this benchmark nothing *measured* it: throughput regressions would
surface only as mysteriously slower CI.  This file pins the perf
trajectory:

* replays a seeded ~170k-request production-shaped trace through
  :func:`repro.workloads.shard.replay_sharded` at 1, 2, and 4 worker
  processes, reporting requests/sec (best of ``ROUNDS``);
* replays a second, **cluster-scale** ~500k-request trace once per worker
  count — big enough to amortize process-pool startup, so on a multi-core
  runner ``--workers`` measurably buys wall-clock (the small trace's
  shards finish faster than the pool spins up, which is why its scaling
  column is flat by construction);
* asserts every run produces **bit-identical** ``WindowedSummary``
  objects — the sharding exactness property, exercised at full benchmark
  scale on every CI run;
* writes ``BENCH_replay_throughput.json`` at the repo root (uploaded as
  a CI artifact) and **fails if throughput regresses more than 25 %**
  against the numbers committed in that file.

The JSON records ``cpu_count`` next to the measurements: wall-clock
speedup from sharding is physically impossible on a single-core runner
(the committed baseline's machine class), so the multi-worker wall-clock
assertion only arms when at least two cores are actually schedulable.

The committed baseline also records the pre-optimization (PR 4 era)
single-core measurement on the same trace, so the file documents the
hot-path pass's speedup, not just the current absolute number.  To
re-baseline after an intentional perf change, run this file and commit
the rewritten JSON.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_header
from repro.faas.cluster import FleetConfig
from repro.faas.sim import SimPlatformConfig
from repro.faas.snapshot import run_stream_checkpointed
from repro.metrics import WindowedSummary
from repro.obs import JournalWriter, PhaseProfiler
from repro.workloads.replay import _load_numpy
from repro.workloads.shard import (
    ShardReplaySpec,
    build_shard_replay,
    replay_sharded,
)
from repro.workloads.trace import TraceGenerator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay_throughput.json"
#: The journaled benchmark run's journal, uploaded as a CI artifact so a
#: full-scale example journal ships with every build.
JOURNAL_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay_journal.jsonl"
#: Baseline loaded BEFORE this run overwrites the file.
COMMITTED = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else None

#: ~172k requests: 20 apps x 10 one-hour windows, one shift event.
TRACE = dict(
    app_count=20,
    duration_hours=10.0,
    window_hours=1.0,
    mean_requests_per_window=520.0,
    shift_hours=(5.0,),
    seed=42,
)
SPEC = ShardReplaySpec(
    platform=SimPlatformConfig(record_traces=False),
    fleet=FleetConfig(max_containers=4, keep_alive_s=30.0),
    seed=9,
    replay_seed=7,
    window_s=3600.0,
)
#: ~515k requests: the cluster-scale configuration.  Each 2-worker shard
#: carries ~250k requests (seconds of work), so pool startup is noise and
#: per-worker wall-clock gains survive into the measurement on any
#: multi-core runner.
CLUSTER_TRACE = dict(
    app_count=32,
    duration_hours=12.0,
    window_hours=1.0,
    mean_requests_per_window=1340.0,
    shift_hours=(6.0,),
    seed=42,
)
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 2  # best-of; replays are deterministic, timing is not
CLUSTER_ROUNDS = 1  # the big trace is its own noise floor
PAIRED_ROUNDS = 4  # disabled/journaled pairs for the overhead guard
#: Cores this process may actually schedule on (cgroup-aware where the
#: platform exposes affinity).
CPU_COUNT = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
#: Single-core requests/sec measured on this trace at the PR 4 tree,
#: before the event-loop hot-path pass (same machine class as the
#: committed results).  Kept for the speedup column of the JSON.
PRE_OPTIMIZATION_RPS = 69_355.0
#: CI regression tolerance vs the committed JSON: generous enough for
#: runner-to-runner jitter, tight enough to catch a real hot-path slip.
ALLOWED_REGRESSION = 0.25
#: Journaling with 1 % span sampling must stay within this fraction of
#: the journaling-disabled throughput — the observability layer's
#: overhead contract.
TRACING_OVERHEAD = 0.10
TRACE_SAMPLE = 0.01


@pytest.fixture(scope="module")
def measured():
    trace = TraceGenerator(**TRACE).generate()
    requests = sum(app.total_invocations() for app in trace.apps)
    results = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            summary = replay_sharded(trace, SPEC, workers=workers)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        summaries[workers] = summary
        results[str(workers)] = {
            "elapsed_s": round(best, 4),
            "requests_per_s": round(requests / best, 1),
            "speedup_vs_pre_optimization": round(
                requests / best / PRE_OPTIMIZATION_RPS, 2
            ),
        }
    return trace, requests, results, summaries


@pytest.fixture(scope="module")
def cluster_measured():
    trace = TraceGenerator(**CLUSTER_TRACE).generate()
    requests = sum(app.total_invocations() for app in trace.apps)
    results = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(CLUSTER_ROUNDS):
            start = time.perf_counter()
            summary = replay_sharded(trace, SPEC, workers=workers)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        summaries[workers] = summary
        single = results.get("1", {}).get("elapsed_s", best)
        results[str(workers)] = {
            "elapsed_s": round(best, 4),
            "requests_per_s": round(requests / best, 1),
            "wall_clock_speedup_vs_1_worker": round(single / best, 2),
        }
    return trace, requests, results, summaries


@pytest.fixture(scope="module")
def journaled_measured(measured):
    """Paired throughput of the journaled (1 %-sampled) replay.

    Interleaves journaling-disabled and journaling-enabled rounds
    through the *identical* harness (``build_shard_replay`` +
    ``run_stream``, timing only the event loop).  The overhead guard
    compares *within* each pair — the two runs of a pair execute moments
    apart under the same machine state, so their ratio cancels the
    multi-second throughput phases a shared runner drifts through
    (±15 % here, which would swamp the 10 % bound) — and keeps the best
    pair's ratio, the cleanest observation of the fixed per-request
    cost.  The last journaled round's journal stays at ``JOURNAL_PATH``
    (a CI artifact).
    """
    trace, requests, _, summaries = measured
    best = {False: math.inf, True: math.inf}
    best_ratio = 0.0
    summary = None
    for _ in range(PAIRED_ROUNDS):
        elapsed = {}
        for journaled in (False, True):
            platform, stream, accumulator = build_shard_replay(SPEC, trace)
            journal = None
            if journaled:
                journal = JournalWriter(
                    JOURNAL_PATH, window_s=SPEC.window_s,
                    trace_sample=TRACE_SAMPLE,
                )
                journal.begin()
            start = time.perf_counter()
            result = platform.run_stream(
                stream, accumulator, flush_at=math.inf, obs=journal
            )
            elapsed[journaled] = time.perf_counter() - start
            if journal is not None:
                journal.close()
                summary = result
            best[journaled] = min(best[journaled], elapsed[journaled])
        best_ratio = max(best_ratio, elapsed[False] / elapsed[True])
    assert summary == summaries[1], "journaling changed the replay result"
    return requests, {
        "elapsed_s": round(best[True], 4),
        "requests_per_s": round(requests / best[True], 1),
        "paired_disabled_rps": round(requests / best[False], 1),
        "paired_throughput_ratio": round(best_ratio, 4),
        "trace_sample": TRACE_SAMPLE,
    }


@pytest.fixture(scope="module")
def profiled(measured):
    """Phase breakdown of one checkpointed 1-worker benchmark replay.

    Times the compile / event-loop / checkpoint-write / merge phases via
    :class:`PhaseProfiler` — the ``--profile`` machinery at benchmark
    scale — and verifies the profiled run still reproduces the
    benchmark summary bit for bit.
    """
    trace, requests, _, summaries = measured
    profiler = PhaseProfiler()
    with tempfile.TemporaryDirectory() as scratch:
        platform, stream, accumulator = build_shard_replay(SPEC, trace)
        stream = profiler.wrap_iter(stream, "compile")
        with profiler.phase("total"):
            summary = run_stream_checkpointed(
                platform,
                stream,
                accumulator,
                Path(scratch) / "profile.ckpt",
                flush_at=math.inf,
                profiler=profiler,
            )
        with profiler.phase("merge"):
            merged = WindowedSummary.merge([summary])
    profiler.derive("event-loop", "total", "compile", "checkpoint-write")
    assert merged == summaries[1], "profiled replay changed the result"
    return profiler.report(requests=requests)


def test_throughput_measured_and_written(
    measured, cluster_measured, journaled_measured, profiled
):
    trace, requests, results, summaries = measured
    _, cluster_requests, cluster_results, cluster_summaries = cluster_measured
    _, journaled_row = journaled_measured

    # The exactness property at benchmark scale: scaling the worker
    # count must never change the merged summary, bit for bit.
    assert summaries[2] == summaries[1]
    assert summaries[4] == summaries[1]
    assert summaries[1].completed == requests
    assert cluster_summaries[2] == cluster_summaries[1]
    assert cluster_summaries[4] == cluster_summaries[1]
    assert cluster_summaries[1].completed == cluster_requests

    # Provenance: whether the repro[fast] accelerator was active during
    # the measurement — a with/without-numpy comparison is meaningless
    # unless the JSON says which one it was.
    numpy_module = _load_numpy()
    payload = {
        "benchmark": "replay_throughput",
        "cpu_count": CPU_COUNT,
        "numpy": None if numpy_module is None else numpy_module.__version__,
        "trace": TRACE,
        "requests": requests,
        "pre_optimization_rps": PRE_OPTIMIZATION_RPS,
        "workers": results,
        "cluster_trace": CLUSTER_TRACE,
        "cluster_requests": cluster_requests,
        "cluster_workers": cluster_results,
        "journaled": journaled_row,
        "phases": profiled,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print_header(
        f"Replay throughput — {requests} requests, sharded across processes "
        f"({CPU_COUNT} core(s) schedulable)"
    )
    print(f"{'workers':>7s} {'elapsed s':>10s} {'req/s':>10s} {'vs pre-opt':>10s}")
    for workers in WORKER_COUNTS:
        row = results[str(workers)]
        print(
            f"{workers:7d} {row['elapsed_s']:10.3f} "
            f"{row['requests_per_s']:10.0f} "
            f"{row['speedup_vs_pre_optimization']:9.2f}x"
        )
    print_header(
        f"Cluster-scale replay — {cluster_requests} requests "
        f"(pool startup amortized)"
    )
    print(f"{'workers':>7s} {'elapsed s':>10s} {'req/s':>10s} {'vs 1 worker':>11s}")
    for workers in WORKER_COUNTS:
        row = cluster_results[str(workers)]
        print(
            f"{workers:7d} {row['elapsed_s']:10.3f} "
            f"{row['requests_per_s']:10.0f} "
            f"{row['wall_clock_speedup_vs_1_worker']:10.2f}x"
        )
    print_header("Replay phase breakdown (1 worker, checkpointed)")
    print(f"{'phase':18s} {'seconds':>10s} {'req/s':>12s}")
    for name, entry in profiled.items():
        rate = entry.get("requests_per_s")
        rate_text = f"{rate:12.0f}" if rate is not None else f"{'-':>12s}"
        print(f"{name:18s} {entry['seconds']:10.4f} {rate_text}")
    print(f"\nwritten to {BENCH_PATH.name}")


def test_cluster_scale_workers_buy_wall_clock(cluster_measured):
    # The point of sharding: wall-clock goes DOWN with workers.  That is
    # physically impossible on one core (every committed single-core
    # baseline shows the honest flat column), so the assertion only arms
    # when a second core is actually schedulable.
    if CPU_COUNT < 2:
        pytest.skip(f"needs >= 2 schedulable cores to parallelize ({CPU_COUNT})")
    _, _, results, _ = cluster_measured
    single = results["1"]["elapsed_s"]
    best_parallel = min(results["2"]["elapsed_s"], results["4"]["elapsed_s"])
    assert best_parallel <= 0.90 * single, (
        f"sharded replay bought no wall-clock on {CPU_COUNT} cores: "
        f"1 worker {single:.3f}s vs best parallel {best_parallel:.3f}s"
    )


class _Interrupt(Exception):
    """Simulated kill: raised from inside the arrival stream."""


def _interrupt_after(stream, count):
    for fed, item in enumerate(stream):
        if fed == count:
            raise _Interrupt
        yield item


def test_journaling_overhead_within_bound(journaled_measured):
    # The observability overhead contract: journaling with 1 % span
    # sampling stays within TRACING_OVERHEAD of the disabled path (which
    # itself is held to ALLOWED_REGRESSION by the committed baseline).
    # The statistic is the best within-pair throughput ratio — each pair
    # runs moments apart under the same machine state, so the ratio
    # cancels runner throughput phases that would swamp a comparison of
    # independently-taken best times.
    requests, journaled_row = journaled_measured
    baseline_rps = journaled_row["paired_disabled_rps"]
    journaled_rps = journaled_row["requests_per_s"]
    ratio = journaled_row["paired_throughput_ratio"]
    floor = 1.0 - TRACING_OVERHEAD
    print_header(
        f"Journaling overhead — {requests} requests, "
        f"{TRACE_SAMPLE:.0%} span sampling"
    )
    print(
        f"disabled {baseline_rps:.0f} req/s, journaled {journaled_rps:.0f} "
        f"req/s (best pair ratio {ratio:.1%}), journal "
        f"{JOURNAL_PATH.name}"
    )
    assert ratio >= floor, (
        f"journaled replay too slow: best within-pair throughput ratio "
        f"{ratio:.1%} under the {1.0 - TRACING_OVERHEAD:.0%} floor "
        f"({TRACING_OVERHEAD:.0%} allowed overhead)"
    )


def test_sharded_checkpoint_kill_and_resume_smoke(measured, tmp_path):
    # CI smoke for the per-shard checkpoint protocol at benchmark scale:
    # a 2-worker checkpointed replay killed mid-trace (every shard ~40k
    # requests in) resumes in fresh processes to the exact summary the
    # uncheckpointed benchmark produced, and cleans up its files — with
    # per-shard journals riding along, merging to one journal artifact.
    from repro.workloads.shard import (
        prepare_sharded_checkpoint,
        run_sharded_checkpointed,
    )

    from repro.obs import shard_journal_path

    trace, requests, _, summaries = measured
    fingerprint = {"benchmark": "replay_throughput"}

    # The uninterrupted journaled reference the resumed run must match.
    reference_journal = tmp_path / "ref.journal.jsonl"
    reference = run_sharded_checkpointed(
        trace,
        tmp_path / "ref.ckpt",
        SPEC,
        workers=2,
        fingerprint=fingerprint,
        journal=reference_journal,
        trace_sample=TRACE_SAMPLE,
    )
    assert reference == summaries[1]

    path = tmp_path / "bench.ckpt"
    journal_path = tmp_path / "bench.journal.jsonl"
    shards, shard_paths, fingerprints, resumed = prepare_sharded_checkpoint(
        trace, path, SPEC, 2, fingerprint
    )
    assert not resumed
    for shard, (sub_trace, shard_path, shard_fp) in enumerate(
        zip(shards, shard_paths, fingerprints)
    ):
        platform, stream, accumulator = build_shard_replay(SPEC, sub_trace)
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                _interrupt_after(stream, 40_000),
                accumulator,
                shard_path,
                flush_at=math.inf,
                keep=True,
                fingerprint=shard_fp,
                journal=JournalWriter(
                    shard_journal_path(journal_path, shard, 2),
                    window_s=SPEC.window_s,
                    fingerprint=shard_fp,
                    trace_sample=TRACE_SAMPLE,
                ),
            )
    start = time.perf_counter()
    summary = run_sharded_checkpointed(
        trace,
        path,
        SPEC,
        workers=2,
        fingerprint=fingerprint,
        journal=journal_path,
        trace_sample=TRACE_SAMPLE,
    )
    elapsed = time.perf_counter() - start
    assert summary == summaries[1]
    # Same fingerprint, window, sampling rate → byte-identical journals.
    assert journal_path.read_bytes() == reference_journal.read_bytes()
    assert sorted(item.name for item in tmp_path.iterdir()) == [
        "bench.journal.jsonl",
        "ref.journal.jsonl",
    ]
    print_header("Sharded checkpoint kill-and-resume smoke (2 workers)")
    print(
        f"killed both shards at 40k requests; resume replayed the rest of "
        f"{requests} in {elapsed:.3f}s, merged bit-identically, and the "
        "merged journal matches the uninterrupted run byte for byte"
    )


def test_no_regression_vs_committed_baseline(measured):
    if COMMITTED is None:
        pytest.skip("no committed BENCH_replay_throughput.json to compare against")
    _, _, results, _ = measured
    for workers, row in COMMITTED["workers"].items():
        committed_rps = row["requests_per_s"]
        measured_rps = results[workers]["requests_per_s"]
        floor = committed_rps * (1.0 - ALLOWED_REGRESSION)
        assert measured_rps >= floor, (
            f"{workers}-worker replay throughput regressed: "
            f"{measured_rps:.0f} req/s vs committed {committed_rps:.0f} "
            f"(floor {floor:.0f})"
        )


def test_no_cluster_scale_regression_vs_committed_baseline(cluster_measured):
    # Only the 1-worker row is machine-portable: multi-worker wall clock
    # depends on how many cores the runner grants, which the committed
    # baseline (cpu_count in the JSON) need not share.
    if COMMITTED is None or "cluster_workers" not in COMMITTED:
        pytest.skip("no committed cluster-scale baseline to compare against")
    _, _, results, _ = cluster_measured
    committed_rps = COMMITTED["cluster_workers"]["1"]["requests_per_s"]
    measured_rps = results["1"]["requests_per_s"]
    floor = committed_rps * (1.0 - ALLOWED_REGRESSION)
    assert measured_rps >= floor, (
        f"cluster-scale single-worker throughput regressed: "
        f"{measured_rps:.0f} req/s vs committed {committed_rps:.0f} "
        f"(floor {floor:.0f})"
    )
