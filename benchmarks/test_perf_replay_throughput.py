"""Replay throughput benchmark — requests/sec at 1/2/4 shard workers.

Every replay figure in this repo rides on the cluster event loop, but
until this benchmark nothing *measured* it: throughput regressions would
surface only as mysteriously slower CI.  This file pins the perf
trajectory:

* replays a seeded ~170k-request production-shaped trace through
  :func:`repro.workloads.shard.replay_sharded` at 1, 2, and 4 worker
  processes, reporting requests/sec (best of ``ROUNDS``);
* replays a second, **cluster-scale** ~500k-request trace once per worker
  count — big enough to amortize process-pool startup, so on a multi-core
  runner ``--workers`` measurably buys wall-clock (the small trace's
  shards finish faster than the pool spins up, which is why its scaling
  column is flat by construction);
* asserts every run produces **bit-identical** ``WindowedSummary``
  objects — the sharding exactness property, exercised at full benchmark
  scale on every CI run;
* writes ``BENCH_replay_throughput.json`` at the repo root (uploaded as
  a CI artifact) and **fails if throughput regresses more than 25 %**
  against the numbers committed in that file.

The JSON records ``cpu_count`` next to the measurements: wall-clock
speedup from sharding is physically impossible on a single-core runner
(the committed baseline's machine class), so the multi-worker wall-clock
assertion only arms when at least two cores are actually schedulable.

The committed baseline also records the pre-optimization (PR 4 era)
single-core measurement on the same trace, so the file documents the
hot-path pass's speedup, not just the current absolute number.  To
re-baseline after an intentional perf change, run this file and commit
the rewritten JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_header
from repro.faas.cluster import FleetConfig
from repro.faas.sim import SimPlatformConfig
from repro.workloads.shard import ShardReplaySpec, replay_sharded
from repro.workloads.trace import TraceGenerator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay_throughput.json"
#: Baseline loaded BEFORE this run overwrites the file.
COMMITTED = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else None

#: ~172k requests: 20 apps x 10 one-hour windows, one shift event.
TRACE = dict(
    app_count=20,
    duration_hours=10.0,
    window_hours=1.0,
    mean_requests_per_window=520.0,
    shift_hours=(5.0,),
    seed=42,
)
SPEC = ShardReplaySpec(
    platform=SimPlatformConfig(record_traces=False),
    fleet=FleetConfig(max_containers=4, keep_alive_s=30.0),
    seed=9,
    replay_seed=7,
    window_s=3600.0,
)
#: ~515k requests: the cluster-scale configuration.  Each 2-worker shard
#: carries ~250k requests (seconds of work), so pool startup is noise and
#: per-worker wall-clock gains survive into the measurement on any
#: multi-core runner.
CLUSTER_TRACE = dict(
    app_count=32,
    duration_hours=12.0,
    window_hours=1.0,
    mean_requests_per_window=1340.0,
    shift_hours=(6.0,),
    seed=42,
)
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 2  # best-of; replays are deterministic, timing is not
CLUSTER_ROUNDS = 1  # the big trace is its own noise floor
#: Cores this process may actually schedule on (cgroup-aware where the
#: platform exposes affinity).
CPU_COUNT = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
#: Single-core requests/sec measured on this trace at the PR 4 tree,
#: before the event-loop hot-path pass (same machine class as the
#: committed results).  Kept for the speedup column of the JSON.
PRE_OPTIMIZATION_RPS = 69_355.0
#: CI regression tolerance vs the committed JSON: generous enough for
#: runner-to-runner jitter, tight enough to catch a real hot-path slip.
ALLOWED_REGRESSION = 0.25


@pytest.fixture(scope="module")
def measured():
    trace = TraceGenerator(**TRACE).generate()
    requests = sum(app.total_invocations() for app in trace.apps)
    results = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            summary = replay_sharded(trace, SPEC, workers=workers)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        summaries[workers] = summary
        results[str(workers)] = {
            "elapsed_s": round(best, 4),
            "requests_per_s": round(requests / best, 1),
            "speedup_vs_pre_optimization": round(
                requests / best / PRE_OPTIMIZATION_RPS, 2
            ),
        }
    return trace, requests, results, summaries


@pytest.fixture(scope="module")
def cluster_measured():
    trace = TraceGenerator(**CLUSTER_TRACE).generate()
    requests = sum(app.total_invocations() for app in trace.apps)
    results = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(CLUSTER_ROUNDS):
            start = time.perf_counter()
            summary = replay_sharded(trace, SPEC, workers=workers)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        summaries[workers] = summary
        single = results.get("1", {}).get("elapsed_s", best)
        results[str(workers)] = {
            "elapsed_s": round(best, 4),
            "requests_per_s": round(requests / best, 1),
            "wall_clock_speedup_vs_1_worker": round(single / best, 2),
        }
    return trace, requests, results, summaries


def test_throughput_measured_and_written(measured, cluster_measured):
    trace, requests, results, summaries = measured
    _, cluster_requests, cluster_results, cluster_summaries = cluster_measured

    # The exactness property at benchmark scale: scaling the worker
    # count must never change the merged summary, bit for bit.
    assert summaries[2] == summaries[1]
    assert summaries[4] == summaries[1]
    assert summaries[1].completed == requests
    assert cluster_summaries[2] == cluster_summaries[1]
    assert cluster_summaries[4] == cluster_summaries[1]
    assert cluster_summaries[1].completed == cluster_requests

    payload = {
        "benchmark": "replay_throughput",
        "cpu_count": CPU_COUNT,
        "trace": TRACE,
        "requests": requests,
        "pre_optimization_rps": PRE_OPTIMIZATION_RPS,
        "workers": results,
        "cluster_trace": CLUSTER_TRACE,
        "cluster_requests": cluster_requests,
        "cluster_workers": cluster_results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print_header(
        f"Replay throughput — {requests} requests, sharded across processes "
        f"({CPU_COUNT} core(s) schedulable)"
    )
    print(f"{'workers':>7s} {'elapsed s':>10s} {'req/s':>10s} {'vs pre-opt':>10s}")
    for workers in WORKER_COUNTS:
        row = results[str(workers)]
        print(
            f"{workers:7d} {row['elapsed_s']:10.3f} "
            f"{row['requests_per_s']:10.0f} "
            f"{row['speedup_vs_pre_optimization']:9.2f}x"
        )
    print_header(
        f"Cluster-scale replay — {cluster_requests} requests "
        f"(pool startup amortized)"
    )
    print(f"{'workers':>7s} {'elapsed s':>10s} {'req/s':>10s} {'vs 1 worker':>11s}")
    for workers in WORKER_COUNTS:
        row = cluster_results[str(workers)]
        print(
            f"{workers:7d} {row['elapsed_s']:10.3f} "
            f"{row['requests_per_s']:10.0f} "
            f"{row['wall_clock_speedup_vs_1_worker']:10.2f}x"
        )
    print(f"\nwritten to {BENCH_PATH.name}")


def test_cluster_scale_workers_buy_wall_clock(cluster_measured):
    # The point of sharding: wall-clock goes DOWN with workers.  That is
    # physically impossible on one core (every committed single-core
    # baseline shows the honest flat column), so the assertion only arms
    # when a second core is actually schedulable.
    if CPU_COUNT < 2:
        pytest.skip(f"needs >= 2 schedulable cores to parallelize ({CPU_COUNT})")
    _, _, results, _ = cluster_measured
    single = results["1"]["elapsed_s"]
    best_parallel = min(results["2"]["elapsed_s"], results["4"]["elapsed_s"])
    assert best_parallel <= 0.90 * single, (
        f"sharded replay bought no wall-clock on {CPU_COUNT} cores: "
        f"1 worker {single:.3f}s vs best parallel {best_parallel:.3f}s"
    )


class _Interrupt(Exception):
    """Simulated kill: raised from inside the arrival stream."""


def _interrupt_after(stream, count):
    for fed, item in enumerate(stream):
        if fed == count:
            raise _Interrupt
        yield item


def test_sharded_checkpoint_kill_and_resume_smoke(measured, tmp_path):
    # CI smoke for the per-shard checkpoint protocol at benchmark scale:
    # a 2-worker checkpointed replay killed mid-trace (every shard ~40k
    # requests in) resumes in fresh processes to the exact summary the
    # uncheckpointed benchmark produced, and cleans up its files.
    import math

    from repro.faas.snapshot import run_stream_checkpointed
    from repro.workloads.shard import (
        build_shard_replay,
        prepare_sharded_checkpoint,
        run_sharded_checkpointed,
    )

    trace, requests, _, summaries = measured
    path = tmp_path / "bench.ckpt"
    fingerprint = {"benchmark": "replay_throughput"}
    shards, shard_paths, fingerprints, resumed = prepare_sharded_checkpoint(
        trace, path, SPEC, 2, fingerprint
    )
    assert not resumed
    for shard, shard_path, shard_fp in zip(shards, shard_paths, fingerprints):
        platform, stream, accumulator = build_shard_replay(SPEC, shard)
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                _interrupt_after(stream, 40_000),
                accumulator,
                shard_path,
                flush_at=math.inf,
                keep=True,
                fingerprint=shard_fp,
            )
    start = time.perf_counter()
    summary = run_sharded_checkpointed(
        trace, path, SPEC, workers=2, fingerprint=fingerprint
    )
    elapsed = time.perf_counter() - start
    assert summary == summaries[1]
    assert list(tmp_path.iterdir()) == []
    print_header("Sharded checkpoint kill-and-resume smoke (2 workers)")
    print(
        f"killed both shards at 40k requests; resume replayed the rest of "
        f"{requests} in {elapsed:.3f}s and merged bit-identically"
    )


def test_no_regression_vs_committed_baseline(measured):
    if COMMITTED is None:
        pytest.skip("no committed BENCH_replay_throughput.json to compare against")
    _, _, results, _ = measured
    for workers, row in COMMITTED["workers"].items():
        committed_rps = row["requests_per_s"]
        measured_rps = results[workers]["requests_per_s"]
        floor = committed_rps * (1.0 - ALLOWED_REGRESSION)
        assert measured_rps >= floor, (
            f"{workers}-worker replay throughput regressed: "
            f"{measured_rps:.0f} req/s vs committed {committed_rps:.0f} "
            f"(floor {floor:.0f})"
        )


def test_no_cluster_scale_regression_vs_committed_baseline(cluster_measured):
    # Only the 1-worker row is machine-portable: multi-worker wall clock
    # depends on how many cores the runner grants, which the committed
    # baseline (cpu_count in the JSON) need not share.
    if COMMITTED is None or "cluster_workers" not in COMMITTED:
        pytest.skip("no committed cluster-scale baseline to compare against")
    _, _, results, _ = cluster_measured
    committed_rps = COMMITTED["cluster_workers"]["1"]["requests_per_s"]
    measured_rps = results["1"]["requests_per_s"]
    floor = committed_rps * (1.0 - ALLOWED_REGRESSION)
    assert measured_rps >= floor, (
        f"cluster-scale single-worker throughput regressed: "
        f"{measured_rps:.0f} req/s vs committed {committed_rps:.0f} "
        f"(floor {floor:.0f})"
    )
