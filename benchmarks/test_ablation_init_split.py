"""Ablation — separating initialization from runtime samples (§III TC-2).

SLIMSTART filters samples caught inside module top-level code out of the
utilization metric.  Disabling the filter makes purely-cold-start libraries
look "used" (their import burn IS CPU activity), which hides exactly the
inefficiencies the tool exists to find — Fig. 5's Lib-4 case.
"""

from benchmarks.conftest import print_header
from repro.core.analyzer import Analyzer
from repro.core.profiles import ProfileBundle
from repro.core.samples import RUNTIME, Sample, SampleSet


def without_init_split(bundle: ProfileBundle) -> ProfileBundle:
    """Relabel every init sample as runtime (the ablated metric)."""
    conflated = SampleSet(
        Sample(path=sample.path, weight=sample.weight, kind=RUNTIME)
        for sample in bundle.samples
    )
    return ProfileBundle(
        app=bundle.app,
        import_profile=bundle.import_profile,
        samples=conflated,
        entry_counts=bundle.entry_counts,
        handler_imports=bundle.handler_imports,
        mean_cold_e2e_ms=bundle.mean_cold_e2e_ms,
        mean_cold_init_ms=bundle.mean_cold_init_ms,
        cold_starts=bundle.cold_starts,
    )


def run_ablation(cycles):
    """Profile under cold-start-heavy traffic (every arrival beyond the
    keep-alive), where init samples dominate the stream — the regime in
    which conflating them with runtime usage does the most damage."""
    from repro.apps.model import bench_platform_config
    from repro.faas.sim import SimPlatform

    app = cycles.app("R-SA")
    config = app.sim_config()
    platform = SimPlatform(config=bench_platform_config())
    platform.deploy(config)
    sparse_schedule = [
        (float(index) * 700.0, entry)
        for index, entry in enumerate(app.mix.sample_sequence(40, seed=3))
    ]
    bundle = cycles.tool.profile_simulated(platform, config, sparse_schedule)
    attributor = cycles.tool.sim_attributor(config)
    analyzer = Analyzer()
    proper = analyzer.analyze(bundle, attributor)
    conflated = analyzer.analyze(without_init_split(bundle), attributor)
    return proper, conflated


def test_ablation_init_runtime_split(benchmark, cycles):
    proper, conflated = benchmark.pedantic(
        run_ablation, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Ablation — init/runtime sample separation (R-SA)")
    print(f"{'metric':34s} {'with split':>12s} {'without':>12s}")
    print(
        f"{'units deferred':34s} {len(proper.plan.all_deferred):>12d} "
        f"{len(conflated.plan.all_deferred):>12d}"
    )
    proper_flags = {flag.module for flag in proper.subtree_flags}
    conflated_flags = {flag.module for flag in conflated.subtree_flags}
    for cluster in sorted(proper_flags):
        status = "still found" if cluster in conflated_flags else "MISSED"
        print(f"  {cluster:32s} without split: {status}")

    # With the split, the Table IV nltk subtrees are flagged.
    for cluster in ("slnltk.sem", "slnltk.stem", "slnltk.parse"):
        assert cluster in proper.plan.deferred_library_edges, cluster
    # Conflating init samples makes dead import-time-only code look used
    # (its import burn IS CPU activity): the analysis misses findings.
    missed = proper_flags - conflated_flags
    assert missed, "conflated analysis should miss at least one subtree"
    assert len(conflated.plan.all_deferred) < len(proper.plan.all_deferred)
