"""Fig. 2 — static reachability vs dynamic sampling categorization.

For the five FaaSLight study apps, split library initialization overhead by
(a) STAT: statically unreachable vs reachable, and (b) DYN: modules with no
samples, 0-2 % of samples, > 2 % of samples.  The paper's Observation 2:
dynamic profiling exposes far more removable overhead than static
reachability — on average ~50.7 % latency-reduction headroom.
"""

import pytest

from benchmarks.conftest import print_header
from repro.apps.catalog import FAASLIGHT_STUDY_KEYS
from repro.core.analyzer import dynamic_categorization
from repro.staticbase import analyze_sim_app


def compute_categorizations(cycles):
    rows = {}
    for key in FAASLIGHT_STUDY_KEYS:
        app = cycles.app(key)
        result = cycles.result(key)
        static = analyze_sim_app(app.sim_config())
        dynamic = dynamic_categorization(
            result.bundle, cycles.tool.sim_attributor(app.sim_config())
        )
        rows[key] = (static.removable_fraction, dynamic)
    return rows


def test_fig2_stat_vs_dyn(benchmark, cycles):
    rows = benchmark.pedantic(
        compute_categorizations, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Fig. 2 — init overhead categorization: STAT vs DYN")
    print(
        f"{'App':8s} {'STAT unreach':>13s} {'STAT reach':>11s} "
        f"{'DYN no-sample':>14s} {'DYN 0-2%':>9s} {'DYN >2%':>8s} "
        f"{'DYN headroom':>13s}"
    )
    headrooms = []
    for key, (static_removable, dynamic) in rows.items():
        headroom = dynamic["no_sample"] + dynamic["rare"]
        headrooms.append(headroom)
        print(
            f"{key:8s} {static_removable:>12.1%} {1 - static_removable:>10.1%} "
            f"{dynamic['no_sample']:>13.1%} {dynamic['rare']:>8.1%} "
            f"{dynamic['hot']:>7.1%} {headroom:>12.1%}"
        )
    mean_headroom = sum(headrooms) / len(headrooms)
    print(f"\nmean dynamic headroom: {mean_headroom:.1%}")

    for key, (static_removable, dynamic) in rows.items():
        headroom = dynamic["no_sample"] + dynamic["rare"]
        # Observation 2: dynamic always sees at least what static sees.
        assert headroom >= static_removable - 0.01, key
        assert headroom > 0.15, key
    # FL-PMP is the most static-friendly app in the figure.
    static_fracs = {k: v[0] for k, v in rows.items()}
    assert max(static_fracs, key=static_fracs.get) == "FL-PMP"
    # Dynamic headroom is substantial on average (paper: ~50.7 %).
    assert mean_headroom == pytest.approx(0.5, abs=0.2)
