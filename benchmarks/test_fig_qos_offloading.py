"""QoS offloading figure — the utility-vs-$ frontier per routing policy.

The paper's QoS argument in one table: when requests carry *different*
utilities and deadlines, where you serve them decides how much value the
platform earns per dollar of provisioned capacity.  Two tight edge sites
originate all traffic (app-hash affinity) in front of deep cloud
capacity; the same seeded 4-day shift-event trace, carrying a
critical/standard/batch QoS mix, replays under each routing policy:

* **round-robin** spreads every app across all four regions — each app
  pays four cold pools' worth of boots and keep-alive tails, and the
  extra cold starts blow the critical class's end-to-end deadline;
* **least-loaded** chases idle fleets, which also scatters warm state;
* **locality** keeps apps home, warm and cheap, but is QoS-blind;
* **probabilistic** (:class:`~repro.faas.region.ProbabilisticOffloadPolicy`)
  re-solves its per-class local/offload/drop LP each interval, keeping
  traffic on home warm pools while capacity lasts and pushing overflow
  over the 40 ms uplink instead of queueing it past deadlines.

The replay is virtual-time deterministic, so the frontier is the same on
every machine: the assertions pin that :class:`ProbabilisticOffload`
**strictly dominates round-robin** — more total utility at equal or
lower dollar cost — and that an identical rerun reproduces the summary
bit for bit.  ``BENCH_qos_offloading.json`` (repo root, uploaded as a CI
artifact) records the frontier; because the numbers are deterministic,
the run also fails if the utility column drifts from the committed file
— re-run this benchmark and commit the rewritten JSON after any
intentional behaviour change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from benchmarks.conftest import print_header
from repro.faas.cluster import FleetConfig
from repro.faas.region import (
    POLICY_NAMES,
    RegionFederation,
    RegionSpec,
    RegionTopology,
    make_policy,
)
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.metrics import QOS_PRESETS, QoSClass, WindowAccumulator
from repro.workloads.replay import HashAffinity, assign_qos, assign_regions, compile_trace
from repro.workloads.trace import TraceGenerator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_qos_offloading.json"
#: Baseline loaded BEFORE this run overwrites the file.
COMMITTED = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else None

SEED = 21
#: The seeded 4-day shift-event trace: two load shifts (hour 48 and 72)
#: inside a 96-hour horizon, ~40k requests total.
TRACE = dict(
    app_count=10,
    duration_hours=96.0,
    window_hours=12.0,
    mean_requests_per_window=300.0,
    shift_hours=(48.0, 72.0),
    seed=SEED,
)
WINDOW_S = 12 * 3600.0
EXEC_MS = 120.0

#: Critical rides a deadline the *cold path cannot meet*: warm service is
#: ~121 ms (+ up to 80 ms of wire), but a container boot costs ~250 ms
#: end-to-end — so every cold start a policy causes on critical traffic
#: converts +4.0 utility into a -2.0 penalty.  Standard and batch are the
#: CLI presets (deadline-free), so the frontier isolates *where cold
#: starts land*, not queueing luck.
MIX = (
    QoSClass(
        name="critical",
        utility=4.0,
        deadline_ms=200.0,
        deadline_penalty=2.0,
        drop_penalty=4.0,
        arrival_weight=2.0,
    ),
    QOS_PRESETS["standard"],
    QoSClass(
        name="batch",
        utility=0.25,
        deadline_ms=math.inf,
        deadline_penalty=0.0,
        drop_penalty=0.05,
        arrival_weight=3.0,
    ),
)

EDGES = ("edge-a", "edge-b")
CLOUDS = ("cloud-1", "cloud-2")
#: Tight edge sites (2 containers per app, short keep-alive) in front of
#: deep cloud capacity — the heterogeneity that gives offloading value.
EDGE_FLEET = FleetConfig(max_containers=2, keep_alive_s=45.0, queue_capacity=16)
CLOUD_FLEET = FleetConfig(max_containers=16, keep_alive_s=240.0, queue_capacity=64)
PLATFORM = SimPlatformConfig(
    cold_platform_ms=100.0,
    runtime_init_ms=30.0,
    warm_platform_ms=1.0,
    record_traces=False,
    jitter_sigma=0.05,
)


def make_topology() -> RegionTopology:
    return RegionTopology.edge_cloud(
        edge=[RegionSpec(name, fleet=EDGE_FLEET) for name in EDGES],
        cloud=[RegionSpec(name, fleet=CLOUD_FLEET) for name in CLOUDS],
        uplink_ms=40.0,
        inter_cloud_ms=10.0,
    )


def make_stream(trace):
    """The shared region+QoS-tagged arrival stream (lazy; build per run)."""
    stream = compile_trace(trace, seed=SEED)
    stream = assign_qos(stream, MIX, seed=SEED)
    return assign_regions(stream, HashAffinity(EDGES))


def run_policy(trace, policy_name):
    federation = RegionFederation(
        make_topology(),
        policy=make_policy(policy_name, qos_classes=MIX, seed=SEED),
        platform=PLATFORM,
        seed=SEED,
        qos=MIX,
    )
    deploy_trace(federation, trace, exec_ms=EXEC_MS)
    accumulator = WindowAccumulator(window_s=WINDOW_S)
    summary = federation.run_stream(make_stream(trace), accumulator)
    return federation, summary


def sweep():
    trace = TraceGenerator(**TRACE).generate()
    return trace, {name: run_policy(trace, name) for name in POLICY_NAMES}


def test_qos_offloading_frontier(benchmark):
    trace, runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    arrivals = next(summary for _, summary in runs.values()).arrivals

    print_header(
        f"QoS offloading — utility-vs-$ frontier ({arrivals} arrivals, "
        f"{len(EDGES)} edge + {len(CLOUDS)} cloud regions, 4-day trace)"
    )
    print(
        f"{'policy':14s} {'utility':>10s} {'$ total':>9s} {'$/1k req':>9s} "
        f"{'completed':>9s} {'shed':>6s} {'crit late':>9s} {'edge %':>7s}"
    )
    frontier = {}
    for name, (federation, summary) in runs.items():
        served = federation.served_counts()
        edge_share = sum(served[r] for r in EDGES) / max(1, sum(served.values()))
        by_class = {entry.qos_class: entry for entry in summary.qos}
        frontier[name] = {
            "utility": round(summary.utility, 4),
            "total_cost": round(summary.cost.total_cost, 6),
            "per_1k_requests": round(summary.cost.per_1k_requests, 6),
            "completed": summary.completed,
            "shed": summary.shed,
            "cold_starts": summary.cold_starts,
            "edge_fraction": round(edge_share, 4),
            "qos": {
                cls: {
                    "completed": entry.completed,
                    "violations": entry.violations,
                    "dropped": entry.dropped,
                    "utility": round(entry.utility, 4),
                }
                for cls, entry in by_class.items()
            },
        }
        print(
            f"{name:14s} {summary.utility:10.2f} {summary.cost.total_cost:9.4f} "
            f"{summary.cost.per_1k_requests:9.4f} {summary.completed:9d} "
            f"{summary.shed:6d} {by_class['critical'].violations:9d} "
            f"{edge_share:7.1%}"
        )

    # Every policy sees the identical tagged stream, and accounts for
    # every arrival: completed + shed (queue sheds and policy drops both
    # fold into `shed` through the streaming sinks).
    for name, (_, summary) in runs.items():
        assert summary.arrivals == arrivals, name
        assert summary.completed + summary.shed == arrivals, name
        assert {entry.qos_class for entry in summary.qos} == {
            cls.name for cls in MIX
        }, name

    # The headline claim: the LP-driven offload mix strictly dominates
    # round-robin — strictly more utility at equal-or-lower dollar cost.
    prob = runs["probabilistic"][1]
    rr = runs["round-robin"][1]
    assert prob.utility > rr.utility, (
        f"probabilistic should dominate round-robin on utility: "
        f"{prob.utility:.2f} vs {rr.utility:.2f}"
    )
    assert prob.cost.total_cost <= rr.cost.total_cost, (
        f"...at equal or lower cost: "
        f"${prob.cost.total_cost:.4f} vs ${rr.cost.total_cost:.4f}"
    )
    # The mechanism, not just the outcome: round-robin scatters warm
    # state, so it cold-starts more — and cold starts are exactly what
    # break the critical class's deadline.
    assert prob.cold_starts < rr.cold_starts
    prob_crit = {e.qos_class: e for e in prob.qos}["critical"]
    rr_crit = {e.qos_class: e for e in rr.qos}["critical"]
    assert prob_crit.violations < rr_crit.violations

    # Determinism: the frontier is virtual-time exact, so an identical
    # rerun reproduces the whole summary (and the routing tally) bit for
    # bit on any machine.
    rerun_federation, rerun_summary = run_policy(trace, "probabilistic")
    assert rerun_summary == prob
    assert rerun_federation.served_counts() == runs["probabilistic"][0].served_counts()

    payload = {
        "benchmark": "qos_offloading",
        "trace": TRACE,
        "window_s": WINDOW_S,
        "exec_ms": EXEC_MS,
        "regions": {"edge": list(EDGES), "cloud": list(CLOUDS)},
        "qos_mix": {
            cls.name: {
                "utility": cls.utility,
                "deadline_ms": None if math.isinf(cls.deadline_ms) else cls.deadline_ms,
                "deadline_penalty": cls.deadline_penalty,
                "drop_penalty": cls.drop_penalty,
                "arrival_weight": cls.arrival_weight,
            }
            for cls in MIX
        },
        "arrivals": arrivals,
        "policies": frontier,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwritten to {BENCH_PATH.name}")

    # The numbers are deterministic, so the committed file is an exact
    # pin, not a tolerance band: any drift means replay behaviour changed.
    if COMMITTED is not None:
        for name, row in COMMITTED["policies"].items():
            assert frontier[name]["utility"] == row["utility"], (
                f"{name} utility drifted from committed "
                f"BENCH_qos_offloading.json: {frontier[name]['utility']} vs "
                f"{row['utility']} — if intentional, commit the rewritten JSON"
            )
