"""Multi-region figure — routing policy comparison on identical traffic.

One hot region (bursty overload) and two quiet ones replay the *same*
region-tagged schedule under each routing policy.  The table contrasts
what each policy trades: round-robin equalizes load but forwards two
thirds of traffic over the WAN; locality keeps requests home and
concentrates queueing in the hot region; least-loaded shifts the hot
region's bursts onto idle remote fleets, buying back queueing delay at
the price of network hops.  Cold-start rate and p95 queueing delay per
region are the quantities the single-cluster figure
(``test_fig_cluster_coldstart``) reports, now split by region —
deterministic under the fixed seed.
"""

from benchmarks.conftest import print_header
from repro.faas.cluster import FleetConfig
from repro.faas.region import (
    FederatedGateway,
    LeastLoadedPolicy,
    LocalityPolicy,
    RegionFederation,
    RegionTopology,
    RoundRobinPolicy,
    replay_federated_workload,
)
from repro.faas.sim import SimPlatformConfig
from repro.workloads.arrival import (
    bursty_schedule,
    merge_tagged_schedules,
    poisson_schedule,
)

REGIONS = ("us-east", "eu-west", "ap-south")
LATENCY_MS = 80.0
DURATION_S = 360.0
SEED = 7

POLICIES = (
    ("round-robin", RoundRobinPolicy),
    ("least-loaded", LeastLoadedPolicy),
    ("locality", lambda: LocalityPolicy(spillover_load=48)),
)


def make_schedule(app):
    """One hot bursty region, two quiet Poisson regions — shared by all
    policies so the comparison is apples-to-apples.  The burst rate
    (~200/s against ~175/s of single-region service capacity) overloads
    the hot region alone but not the federation."""
    hot = bursty_schedule(
        app.mix,
        base_rate_per_s=2.0,
        burst_rate_per_s=200.0,
        period_s=120.0,
        burst_fraction=0.2,
        duration_s=DURATION_S,
        seed=11,
    )
    quiet_eu = poisson_schedule(app.mix, rate_per_s=1.5, duration_s=DURATION_S, seed=12)
    quiet_ap = poisson_schedule(app.mix, rate_per_s=0.8, duration_s=DURATION_S, seed=13)
    return merge_tagged_schedules(
        [("us-east", hot), ("eu-west", quiet_eu), ("ap-south", quiet_ap)]
    )


def run_policy(app, schedule, policy_factory):
    federation = RegionFederation(
        RegionTopology.fully_connected(REGIONS, default_ms=LATENCY_MS),
        policy=policy_factory(),
        platform=SimPlatformConfig(
            cold_platform_ms=100.0,
            runtime_init_ms=30.0,
            warm_platform_ms=1.0,
            record_traces=False,
            jitter_sigma=0.05,
        ),
        fleet=FleetConfig(max_containers=3, keep_alive_s=60.0, queue_capacity=64),
        seed=SEED,
    )
    federation.deploy(app.sim_config())
    gateway = FederatedGateway(platform=federation)
    gateway.expose(app.name, tuple(entry.name for entry in app.entries))
    replay_federated_workload(federation, gateway, schedule, app.name)
    return federation


def sweep(cycles):
    app = cycles.app("R-GB")
    schedule = make_schedule(app)
    return schedule, {
        name: run_policy(app, schedule, factory) for name, factory in POLICIES
    }


def test_multiregion_routing_policy_comparison(benchmark, cycles):
    schedule, runs = benchmark.pedantic(sweep, args=(cycles,), rounds=1, iterations=1)
    app_name = runs["round-robin"].app_names()[0]

    print_header(
        "Multi-region — routing policies on identical traffic "
        f"({len(schedule)} arrivals, {LATENCY_MS:.0f} ms inter-region RTT/2)"
    )
    print(
        f"{'policy':14s} {'region':10s} {'served':>7s} {'rejected':>8s} "
        f"{'cold rate':>9s} {'queue p95 ms':>12s} {'local %':>8s} "
        f"{'net mean ms':>11s}"
    )
    summaries = {}
    for name, federation in runs.items():
        stats = federation.region_stats(app_name)
        routing = summaries[name] = federation.routing_summary()
        for index, region in enumerate(REGIONS):
            s = stats[region]
            tail = (
                f"{routing.local_fraction:8.1%} {routing.network_ms.mean_ms:11.2f}"
                if index == 0
                else " " * 20
            )
            print(
                f"{name if index == 0 else '':14s} {region:10s} {s.completed:7d} "
                f"{s.rejected:8d} {s.cold_start_rate:9.3f} "
                f"{s.queueing.p95_ms:12.2f} {tail}"
            )

    # Every arrival is routed and accounted for, under every policy.
    for name, federation in runs.items():
        stats = federation.region_stats(app_name)
        total = sum(s.completed + s.rejected for s in stats.values())
        assert total == len(schedule), name

    # Round-robin spreads service evenly regardless of origin...
    rr_counts = runs["round-robin"].served_counts(app_name)
    assert max(rr_counts.values()) - min(rr_counts.values()) <= 1
    # ...which costs it locality; locality-biased routing keeps traffic home.
    assert summaries["locality"].local_fraction > 0.85
    assert summaries["locality"].local_fraction > summaries["round-robin"].local_fraction
    assert summaries["round-robin"].local_fraction < 0.40

    # Least-loaded drains the hot region's bursts into remote capacity:
    # its hot-region p95 queueing beats deep-spillover locality's, which
    # lets real backlog build at home before offloading.
    hot = REGIONS[0]
    ll_hot = runs["least-loaded"].region_stats(app_name)[hot]
    loc_hot = runs["locality"].region_stats(app_name)[hot]
    assert loc_hot.queueing.p95_ms > 50.0  # bursts genuinely queue at home
    assert ll_hot.queueing.p95_ms < loc_hot.queueing.p95_ms

    # Determinism: an identical replay reproduces identical stats.
    rerun = run_policy(cycles.app("R-GB"), schedule, dict(POLICIES)["least-loaded"])
    assert rerun.region_stats(app_name) == runs["least-loaded"].region_stats(app_name)
    assert rerun.assignments == runs["least-loaded"].assignments
