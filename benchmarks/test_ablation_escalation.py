"""Ablation — CCT sample escalation (§III TC-2, Fig. 5).

SLIMSTART attributes a sample to *every* library frame on its stack, so an
orchestrator that delegates all heavy work to callees still registers as
used.  The ablation replaces escalation with naive leaf-only attribution
(what a flat profiler reports) and shows that orchestrator-style clusters
fall below the rare threshold and would be wrongly deferred.
"""

from benchmarks.conftest import print_header
from repro.core.analyzer import Analyzer
from repro.core.samples import RUNTIME


def leaf_only_utilization(bundle, attributor):
    """Naive attribution: only the sample's leaf frame gets credit."""
    touched = {}
    denominator = 0.0
    for sample in bundle.samples:
        if sample.kind != RUNTIME:
            continue
        module = attributor.module_of(sample.path[-1])
        if module is None:
            continue
        denominator += sample.weight
        touched[module] = touched.get(module, 0.0) + sample.weight
    if denominator <= 0:
        return {}
    return {module: weight / denominator for module, weight in touched.items()}


def run_ablation(cycles):
    app = cycles.app("R-SA")
    result = cycles.result("R-SA")
    attributor = cycles.tool.sim_attributor(app.sim_config())
    analyzer = Analyzer()
    escalated = analyzer.module_utilization(result.bundle, attributor)
    leaf_only = leaf_only_utilization(result.bundle, attributor)
    return app, result, escalated, leaf_only


def test_ablation_cct_escalation(benchmark, cycles):
    app, result, escalated, leaf_only = benchmark.pedantic(
        run_ablation, args=(cycles,), rounds=1, iterations=1
    )

    analyzer = Analyzer()
    # Orchestrator modules: cluster roots of clusters the plan keeps.
    kept_clusters = [
        f"slnltk.{cluster}"
        for cluster in ("tokenize", "corpus", "data", "chunk", "metrics")
    ]
    print_header("Ablation — CCT escalation vs leaf-only attribution (R-SA)")
    print(f"{'cluster root (orchestrator)':32s} {'escalated':>10s} {'leaf-only':>10s}")
    degraded = 0
    for module in kept_clusters:
        esc = analyzer.subtree_utilization(escalated, module)
        leaf = analyzer.subtree_utilization(leaf_only, module)
        print(f"{module:32s} {esc:>9.2%} {leaf:>9.2%}")
        # Orchestrator roots themselves barely appear as leaves.
        esc_root = escalated.get(module, 0.0)
        leaf_root = leaf_only.get(module, 0.0)
        if leaf_root < esc_root:
            degraded += 1

    # Escalation gives every kept cluster comfortable utilization.
    for module in kept_clusters:
        assert analyzer.subtree_utilization(escalated, module) > 0.0, module
    # Leaf-only systematically under-credits orchestrator roots.
    assert degraded >= len(kept_clusters) - 1
    # And the overall plan (with escalation) never deferred a hot cluster.
    assert "slnltk.tokenize" not in result.plan.all_deferred
