"""Table I — the graph_bfs motivating example.

The igraph stand-in initializes its visualization stack by default;
graph_bfs only traverses graphs.  The paper measures drawing at ~37 % of
igraph's initialization and reports a 1.65x library-init improvement from
manually disabling visualization + other non-essential components.
"""

import pytest

from benchmarks.conftest import print_header
from repro.faas.sim import SimPlatform
from repro.plan import DeferralPlan


def run_motivation(cycles):
    app = cycles.app("R-GB")
    library = app.ecosystem.library("sligraph")
    drawing_share = (
        library.subtree_init_cost_ms("drawing") / library.total_init_cost_ms
    )

    # Manually disable visualization + the other non-essential clusters
    # (what the paper's authors did by hand before building the tool).
    platform = SimPlatform()
    platform.deploy(app.sim_config())
    before = platform.invoke(app.name, "handle")
    platform.redeploy(
        app.name,
        DeferralPlan(
            app=app.name,
            deferred_library_edges=frozenset(
                {"sligraph.drawing", "sligraph.layout"}
            ),
        ),
    )
    after = platform.invoke(app.name, "handle")
    lib_before = before.init_ms - 35.0  # subtract runtime boot
    lib_after = after.init_ms - 35.0
    return drawing_share, lib_before / lib_after


def test_table1_graph_bfs_motivation(benchmark, cycles):
    drawing_share, improvement = benchmark.pedantic(
        run_motivation, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Table I — graph_bfs / igraph motivating example")
    print("eagerly imported, unused by BFS: sligraph.drawing (+ layout)")
    print(f"drawing share of igraph init : {drawing_share:.1%}  (paper: 37 %)")
    print(f"library-init improvement     : {improvement:.2f}x  (paper: 1.65x)")
    print("call path: handler.py -> sligraph/__init__.py "
          "-> sligraph/drawing/__init__.py")

    assert drawing_share == pytest.approx(0.37, abs=0.01)
    assert improvement == pytest.approx(1.65, rel=0.15)
