"""Table V — SLIMSTART report on the CVE binary analyzer.

The paper's case study: xmlschema carries ~8 % of initialization at 0.78 %
utilization (only SBOM inputs need it); lazy loading it (and the cascading
elementpath dependency) yields 1.27x init / 1.20x e2e / 1.21x memory.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core.report import render_report


def run_case_study(cycles):
    return cycles.app("CVE"), cycles.result("CVE")


def test_table5_cve_binary_analyzer_case_study(benchmark, cycles):
    app, result = benchmark.pedantic(
        run_case_study, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Table V — SLIMSTART report on the CVE binary analyzer")
    print(render_report(result.report))
    s = result.speedups
    print()
    print(f"init speedup   : {s.init_speedup:.2f}x (paper 1.27x)")
    print(f"e2e speedup    : {s.e2e_speedup:.2f}x (paper 1.20x)")
    print(f"memory         : {s.memory_reduction:.2f}x (paper 1.21x)")

    # xmlschema: low utilization, non-trivial init share, handler-deferred.
    row = result.report.row("slxmlschema")
    assert row.utilization < 0.02
    assert row.utilization > 0.0  # rarely used, not dead: the SBOM path
    assert row.init_share > 0.05
    assert "slxmlschema" in result.plan.deferred_handler_imports
    # The cascading elementpath dependency is eliminated too.
    assert "slelementpath" in result.plan.all_deferred
    # The checkers pipeline stays eager.
    assert "slcvecheckers" not in result.plan.all_deferred
    # Speedups in the paper's band.
    assert s.init_speedup == pytest.approx(1.27, rel=0.15)
    assert s.e2e_speedup == pytest.approx(1.20, rel=0.15)
    assert s.memory_reduction >= 1.05
