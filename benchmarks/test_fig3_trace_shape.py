"""Fig. 3 — production-trace shape: handler-count PDF and invocation CDF.

Paper: 54 % of serverless applications expose more than one entry function,
and the top few handlers account for over 80 % of cumulative invocations.
"""

from benchmarks.conftest import print_header
from repro.workloads.trace import TraceGenerator


def generate_trace():
    return TraceGenerator(app_count=119, seed=2025).generate()


def test_fig3_handler_pdf_and_invocation_cdf(benchmark):
    trace = benchmark.pedantic(generate_trace, rounds=1, iterations=1)

    print_header("Fig. 3 (left) — PDF of apps by number of handler functions")
    pdf = trace.handler_count_pdf()
    for count, fraction in pdf.items():
        bar = "#" * int(fraction * 120)
        print(f"{count:3d} handlers: {fraction:6.1%} {bar}")
    multi = trace.multi_entry_fraction()
    print(f"\nmulti-entry applications: {multi:.1%} (paper: 54 %)")

    print_header("Fig. 3 (right) — CDF of invocation share by handler rank")
    mean_cdf, min_cdf, max_cdf = trace.invocation_cdf_by_rank()
    print(f"{'rank':>4s} {'mean':>7s} {'min':>7s} {'max':>7s}")
    for rank in range(min(10, len(mean_cdf))):
        print(
            f"{rank + 1:4d} {mean_cdf[rank]:7.1%} {min_cdf[rank]:7.1%} "
            f"{max_cdf[rank]:7.1%}"
        )

    assert 0.44 <= multi <= 0.64  # 54 % +- band
    assert mean_cdf[min(2, len(mean_cdf) - 1)] > 0.80  # top handlers dominate
    assert abs(mean_cdf[-1] - 1.0) < 1e-9
