"""Fig. 8 — memory reduction achieved by SLIMSTART.

Paper: up to 1.51x reduction in peak runtime memory.
"""

import pytest

from benchmarks.conftest import print_header
from repro.apps.catalog import OPTIMIZABLE_KEYS


def collect_memory(cycles):
    return {
        key: (
            cycles.result(key).before.memory.peak_mb,
            cycles.result(key).after.memory.peak_mb,
            cycles.result(key).speedups.memory_reduction,
        )
        for key in OPTIMIZABLE_KEYS
    }


def test_fig8_memory_reduction(benchmark, cycles):
    rows = benchmark.pedantic(collect_memory, args=(cycles,), rounds=1, iterations=1)

    print_header("Fig. 8 — peak memory reduction")
    print(f"{'App':10s} {'Before MB':>10s} {'After MB':>10s} {'Reduction':>10s}")
    for key, (before_mb, after_mb, reduction) in rows.items():
        bar = "#" * int((reduction - 1.0) * 40)
        print(f"{key:10s} {before_mb:10.1f} {after_mb:10.1f} {reduction:9.2f}x {bar}")

    reductions = [r for _, _, r in rows.values()]
    # Every optimized app saves memory; the best saves ~1.5x or more.
    assert all(reduction >= 1.0 for reduction in reductions)
    assert max(reductions) >= 1.4
    assert max(reductions) == pytest.approx(1.51, abs=0.35)
    # Most apps show a tangible (>= 5 %) reduction.
    assert sum(1 for r in reductions if r >= 1.05) >= len(reductions) * 0.7
