"""Trace replay figure — autoscaler policies on the paper's workload shape.

Every earlier autoscaler experiment drove the fleets with synthetic
Poisson/bursty schedules.  This benchmark is the first where the
policies meet the paper's *actual* workload shape: a §II-C
production-shaped trace (Zipf handler popularity, multi-entry apps,
workload-shift events à la Fig. 10) streamed through the cluster
simulator by `repro.workloads.replay` — a 4-day, ~50k-request replay
that runs at bounded memory and reports a per-window time series, so
diurnal structure and shift-event transients stay visible instead of
being averaged into one number.

Deterministic under fixed seeds: identical summaries reproduce
bit-identically, which is also asserted.
"""

from benchmarks.conftest import print_header
from repro.faas.autoscale import PanicWindow, PerRequest, TargetUtilization
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.metrics import PricingModel, WindowAccumulator
from repro.workloads.replay import DiurnalArrivals, compile_trace
from repro.workloads.trace import TraceGenerator

#: 10 apps x 16 six-hour windows (4 days), shifts on days 1.5 and 2.5.
TRACE = TraceGenerator(
    app_count=10,
    duration_hours=96.0,
    window_hours=6.0,
    mean_requests_per_window=2000.0,
    shift_hours=(36.0, 60.0),
    seed=2025,
)
WINDOW_S = 6 * 3600.0
SCALE = 0.15  # ~50k arrivals: multi-day scale at benchmark-suite runtime
KEEP_ALIVE_S = 60.0

POLICIES = (
    PerRequest(),
    TargetUtilization(target=0.6, scale_to_zero_grace_s=120.0),
    PanicWindow(target=0.6, stable_window_s=600.0, panic_window_s=60.0),
)
PRICING = PricingModel(cold_start_surcharge=0.000005)


def replay(trace, policy):
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0,
            runtime_init_ms=30.0,
            warm_platform_ms=1.0,
            record_traces=False,
            jitter_sigma=0.05,
        ),
        fleet=FleetConfig(
            max_containers=6, keep_alive_s=KEEP_ALIVE_S, policy=policy
        ),
        seed=7,
    )
    deploy_trace(platform, trace)
    return platform.run_stream(
        compile_trace(
            trace, model=DiurnalArrivals(amplitude=0.9), seed=11, scale=SCALE
        ),
        WindowAccumulator(window_s=WINDOW_S, pricing=PRICING),
    )


def sweep(trace):
    return {policy.name: replay(trace, policy) for policy in POLICIES}


def test_trace_replay_policy_comparison(benchmark):
    trace = TRACE.generate()
    results = benchmark.pedantic(sweep, args=(trace,), rounds=1, iterations=1)

    print_header(
        "Trace replay — three autoscalers on one production-shaped trace "
        f"({TRACE.duration_hours:.0f} h, shifts at "
        f"{', '.join(f'{h:.0f} h' for h in TRACE.shift_hours)})"
    )
    print(
        f"{'policy':20s} {'arrivals':>8s} {'cold rate':>9s} {'GB-s':>9s} "
        f"{'$ / 1k req':>10s}"
    )
    for name, summary in results.items():
        print(
            f"{name:20s} {summary.arrivals:8d} {summary.cold_start_rate:9.4f} "
            f"{summary.gb_seconds:9.0f} {summary.cost.per_1k_requests:10.6f}"
        )

    print_header("Per-window cold-start rate (the transients a mean hides)")
    shift_series = trace.mean_shift_series()
    print(f"{'window':>6s} {'start h':>8s} {'trace dp':>9s} " + "  ".join(
        f"{policy.name:>18s}" for policy in POLICIES
    ))
    eager = results["per-request"]
    for position, window in enumerate(eager.windows):
        churn = shift_series[window.index - 1] if window.index >= 1 else 0.0
        row = "  ".join(
            f"{results[policy.name].windows[position].cold_start_rate:18.4f}"
            for policy in POLICIES
        )
        print(f"{window.index:6d} {window.start_s / 3600.0:8.1f} {churn:9.5f} {row}")

    panic = results["panic-window"]
    target = results["target-utilization"]

    # Identical compiled stream in: identical traffic everywhere.
    assert (
        eager.series("arrivals")
        == panic.series("arrivals")
        == target.series("arrivals")
    )
    assert eager.shed == panic.shed == target.shed == 0
    assert eager.arrivals == eager.completed

    # The frontier holds on the production shape too: panic-window's
    # suspended scale-down more than halves the cold-start rate and pays
    # for it in provisioned GB-seconds.
    assert panic.cold_start_rate < eager.cold_start_rate / 2
    assert panic.gb_seconds > eager.gb_seconds
    assert panic.cost.per_1k_requests > eager.cost.per_1k_requests

    # The window series really carries structure a scalar average hides:
    # diurnal density modulation moves the eager policy's per-window
    # cold-start rate by whole percentage points across the day.
    eager_cold = eager.series("cold_start_rate")
    assert max(eager_cold) - min(eager_cold) > 0.01

    # And the trace's shift events sit exactly where the replay windows
    # put them: Δp spikes at the transitions into the shift windows
    # (hours 36 and 60 → window indices 6 and 10), >100x the baseline.
    spikes = {index for index, value in enumerate(shift_series) if value > 0.01}
    assert spikes == {5, 9}
    baseline = max(
        value for index, value in enumerate(shift_series) if index not in spikes
    )
    assert min(shift_series[5], shift_series[9]) > 100 * baseline


def test_trace_replay_is_deterministic():
    trace = TRACE.generate()
    policy = POLICIES[2]
    assert replay(trace, policy) == replay(trace, policy)
