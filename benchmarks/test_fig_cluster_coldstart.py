"""Cluster figure — cold-start rate and queueing vs. offered load.

The paper's motivation (init time dominates cold-start latency) matters in
production exactly as often as cold starts happen.  This benchmark sweeps
Poisson offered load against a keep-alive container fleet and reproduces
the canonical fleet curve: sparse traffic outlives every keep-alive and
pays a cold start per request, while dense traffic keeps the fleet warm
and amortizes boots across thousands of invocations — which is why the
per-cold-start init savings of the optimizer compound with traffic, not
against it.
"""

from benchmarks.conftest import print_header
from repro.faas.cluster import ClusterPlatform, FleetConfig, replay_cluster_workload
from repro.faas.gateway import Gateway
from repro.faas.sim import SimPlatformConfig
from repro.workloads.arrival import poisson_schedule

KEEP_ALIVE_S = 120.0
DURATION_S = 3600.0
RATES_PER_S = (0.002, 0.01, 0.05, 0.5, 5.0, 25.0)


def sweep(cycles):
    app = cycles.app("R-GB")
    results = []
    for rate in RATES_PER_S:
        platform = ClusterPlatform(
            config=SimPlatformConfig(
                cold_platform_ms=100.0,
                runtime_init_ms=30.0,
                warm_platform_ms=1.0,
                record_traces=False,
                jitter_sigma=0.05,
            ),
            fleet=FleetConfig(max_containers=64, keep_alive_s=KEEP_ALIVE_S),
            seed=7,
        )
        config = app.sim_config()
        platform.deploy(config)
        gateway = Gateway(platform)
        gateway.expose(app.name, tuple(entry.name for entry in app.entries))
        schedule = poisson_schedule(
            app.mix, rate_per_s=rate, duration_s=DURATION_S, seed=11
        )
        replay_cluster_workload(platform, gateway, schedule, app.name)
        results.append(platform.fleet_stats(app.name))
    return results


def test_cluster_cold_start_rate_vs_offered_load(benchmark, cycles):
    results = benchmark.pedantic(sweep, args=(cycles,), rounds=1, iterations=1)

    print_header(
        "Cluster — cold-start rate vs. offered load "
        f"(keep-alive {KEEP_ALIVE_S:.0f} s, {DURATION_S:.0f} s of traffic)"
    )
    print(
        f"{'offered req/s':>13s} {'completed':>9s} {'cold rate':>9s} "
        f"{'peak ctr':>8s} {'queue p99 ms':>12s} {'ctr-seconds':>11s}"
    )
    for stats in results:
        bar = "#" * int(stats.cold_start_rate * 60)
        print(
            f"{stats.offered_load.per_second:13.3f} {stats.completed:9d} "
            f"{stats.cold_start_rate:9.3f} {stats.peak_containers:8d} "
            f"{stats.queueing.p99_ms:12.2f} {stats.container_seconds:11.1f} {bar}"
        )

    rates = [stats.cold_start_rate for stats in results]
    # Sparse traffic (mean gap >> keep-alive) cold-starts most requests;
    # dense traffic amortizes boots away by orders of magnitude.
    assert rates[0] > 0.5
    assert rates[-1] < 0.01
    assert rates[0] > 100 * rates[-1]
    # The curve is monotone non-increasing across the sweep (small jitter
    # tolerance: adjacent points may tie).
    for sparse, dense in zip(rates, rates[1:]):
        assert dense <= sparse + 0.02
    # Busier fleets provision more container-seconds even as the *rate*
    # of cold starts falls.
    assert results[-1].container_seconds > results[0].container_seconds
