"""Ablation — adaptive vs periodic vs one-shot profiling (§IV-C).

A workload shift swaps the hot and cold entry points mid-run.  Three
policies are compared on profiling effort and post-shift cold-start
latency:

* one-shot: profile/optimize once after the first phase, never again
  (the plan is stale after the shift),
* periodic: re-profile at every window boundary regardless of workload,
* adaptive: Eq. 7 fires -> fine-grained profiling of the *following*
  traffic -> optimizer update (exactly Fig. 4's decision loop).

Expected shape: adaptive reaches the post-shift plan quality of periodic
at a fraction of its profiling runs, and beats the stale one-shot plan.
"""

from collections import deque

from benchmarks.conftest import print_header
from repro.apps.model import bench_platform_config
from repro.core.adaptive import WorkloadMonitor
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.faas.sim import SimPlatform
from repro.workloads.arrival import poisson_schedule
from repro.workloads.popularity import EntryMix

WINDOW_S = 1800.0
PHASE_ONE_WINDOWS = 4
PHASE_TWO_WINDOWS = 10
#: Sparse arrivals (mean gap > keep-alive) so every request cold-starts and
#: the deferral plan's quality shows on every single invocation.
RATE_PER_S = 1 / 700.0
PROFILE_SAMPLE_SIZE = 8  # invocations observed per fine-grained profile


def run_policy(app, policy: str):
    tool = SlimStart(PipelineConfig(measure_cold_starts=10, measure_runs=1))
    platform = SimPlatform(config=bench_platform_config())
    config = app.sim_config()
    platform.deploy(config)
    attributor = tool.sim_attributor(config)

    phase_one = EntryMix(entries=("handle",), weights=(1.0,))
    shifted_entry = app.entries[-1].name  # a formerly-never entry takes over
    phase_two = EntryMix(entries=(shifted_entry,), weights=(1.0,))

    profiles = 0
    pending: list[str] | None = None

    def reprofile(entries: list[str]) -> None:
        nonlocal profiles
        profiles += 1
        platform.clear_history(config.name)
        platform.reset_pool(config.name)  # profiling spans cold starts too
        base = platform.clock.now() + 1.0
        schedule = [
            (base + index * 2.0, entry) for index, entry in enumerate(entries)
        ]
        bundle = tool.profile_simulated(platform, config, schedule)
        report = tool.analyze(bundle, attributor)
        plan = tool.refine_plan(
            platform.plan_for(config.name), report, bundle, attributor
        )
        platform.redeploy(config.name, plan)

    monitor = WorkloadMonitor(window_s=WINDOW_S, epsilon=0.002)
    recent: deque[str] = deque(maxlen=PROFILE_SAMPLE_SIZE)
    post_shift_cold_e2e: list[float] = []
    phases = (
        (phase_one, PHASE_ONE_WINDOWS, 0.0),
        (phase_two, PHASE_TWO_WINDOWS, PHASE_ONE_WINDOWS * WINDOW_S),
    )
    for phase_index, (mix, windows, start_s) in enumerate(phases):
        schedule = poisson_schedule(
            mix,
            rate_per_s=RATE_PER_S,
            duration_s=windows * WINDOW_S,
            seed=90 + phase_index,
            start_s=start_s,
        )
        for arrival, entry in schedule:
            at = max(arrival, platform.clock.now())
            record = platform.invoke(config.name, entry, at=at)
            recent.append(entry)
            if phase_index == 1 and record.cold:
                post_shift_cold_e2e.append(record.e2e_ms)
            if pending is not None:
                pending.append(entry)
                if len(pending) >= PROFILE_SAMPLE_SIZE:
                    reprofile(pending)
                    pending = None
            for decision in monitor.observe(entry, at):
                if policy == "periodic" or (
                    policy == "adaptive" and decision.triggered
                ):
                    # Trigger fine-grained profiling of upcoming traffic.
                    if pending is None:
                        pending = []
        if phase_index == 0:
            # Every policy gets the initial optimization after phase one.
            reprofile(list(recent))
    tail = post_shift_cold_e2e[len(post_shift_cold_e2e) // 2 :]
    return profiles, sum(tail) / len(tail)


def run_study(cycles):
    app = cycles.app("R-GB")
    return {
        policy: run_policy(app, policy)
        for policy in ("one-shot", "periodic", "adaptive")
    }


def test_ablation_adaptive_profiling(benchmark, cycles):
    rows = benchmark.pedantic(run_study, args=(cycles,), rounds=1, iterations=1)

    print_header("Ablation — adaptive vs periodic vs one-shot re-profiling (R-GB)")
    print(
        f"{'policy':10s} {'profiling runs':>15s} "
        f"{'post-shift cold e2e (ms)':>26s}"
    )
    for policy, (profiles, post_shift) in rows.items():
        print(f"{policy:10s} {profiles:>15d} {post_shift:>26.1f}")

    one_shot = rows["one-shot"]
    periodic = rows["periodic"]
    adaptive = rows["adaptive"]
    # Adaptive re-profiles far less often than periodic...
    assert adaptive[0] < periodic[0]
    # ...while reaching equivalent post-shift cold-start latency...
    assert adaptive[1] <= periodic[1] * 1.10
    # ...and clearly beating the stale one-shot plan.
    assert adaptive[1] < one_shot[1] * 0.95
