"""Table III — SLIMSTART vs FaaSLight on the five study applications.

Unlike the paper (which could only quote FaaSLight's reported numbers), we
run *both tools' plans* through the identical measurement machinery: the
FaaSLight baseline contributes its static-reachability plan, SLIMSTART its
profile-guided plan, and each is measured on the same simulated platform.
"""

import pytest

from benchmarks.conftest import COLD_STARTS, RUNS, print_header
from repro.apps.catalog import FAASLIGHT_STUDY_KEYS
from repro.apps.model import bench_platform_config
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.core.report import render_comparison_row
from repro.faas.events import InvocationStats
from repro.faas.sim import SimPlatform
from repro.staticbase import analyze_sim_app


def measure_faaslight(app):
    """Measure before/after of the *static* plan on a fresh platform."""
    tool = SlimStart(PipelineConfig(measure_cold_starts=COLD_STARTS, measure_runs=RUNS))
    platform = SimPlatform(config=bench_platform_config(record_traces=False))
    config = app.sim_config()
    platform.deploy(config)
    before = InvocationStats.from_records(
        tool.measure_cold_starts(platform, app.name, app.mix)
    )
    platform.clear_history(app.name)
    static = analyze_sim_app(config)
    platform.redeploy(app.name, static.plan)
    after = InvocationStats.from_records(
        tool.measure_cold_starts(platform, app.name, app.mix)
    )
    return before, after


def run_comparison(cycles):
    rows = {}
    for key in FAASLIGHT_STUDY_KEYS:
        app = cycles.app(key)
        slimstart = cycles.result(key)
        fl_before, fl_after = measure_faaslight(app)
        rows[key] = (slimstart, fl_before, fl_after)
    return rows


def test_table3_slimstart_vs_faaslight(benchmark, cycles):
    rows = benchmark.pedantic(run_comparison, args=(cycles,), rounds=1, iterations=1)

    print_header("Table III — SLIMSTART vs FaaSLight (same testbed, both plans)")
    for key, (slimstart, fl_before, fl_after) in rows.items():
        print(f"\n{key}")
        print(
            "  FaaSLight  "
            + render_comparison_row(
                "",
                fl_before.memory.peak_mb,
                fl_after.memory.peak_mb,
                fl_before.e2e.mean_ms,
                fl_after.e2e.mean_ms,
            )
        )
        print(
            "  SlimStart  "
            + render_comparison_row(
                "",
                slimstart.before.memory.peak_mb,
                slimstart.after.memory.peak_mb,
                slimstart.before.e2e.mean_ms,
                slimstart.after.e2e.mean_ms,
            )
        )

    # Shape: SLIMSTART beats the static baseline on latency for every app
    # and on memory for most (paper: avg 14.29 % better latency reduction,
    # 27.72 % better memory reduction).
    latency_wins = 0
    memory_wins = 0
    for key, (slimstart, fl_before, fl_after) in rows.items():
        fl_latency = fl_before.e2e.mean_ms / fl_after.e2e.mean_ms
        ss_latency = slimstart.speedups.e2e_speedup
        fl_memory = fl_before.memory.peak_mb / fl_after.memory.peak_mb
        ss_memory = slimstart.speedups.memory_reduction
        if ss_latency > fl_latency:
            latency_wins += 1
        if ss_memory > fl_memory:
            memory_wins += 1
    assert latency_wins == len(rows)
    assert memory_wins >= len(rows) - 1
    # The flagship comparison: sentiment analysis ~2.0x e2e for SLIMSTART.
    flagship = rows["FL-SA"][0]
    assert flagship.speedups.e2e_speedup == pytest.approx(2.01, rel=0.1)
    assert flagship.speedups.memory_reduction > 1.3
