"""Ablation — the 2 % utilization threshold (§IV-A).

Sweeps the rare-utilization threshold and reports the trade-off: a higher
threshold defers more init cost (faster cold starts) but pushes more load
onto first-use lazy loading (heavier rare-path execution).
"""

import pytest

from benchmarks.conftest import COLD_STARTS, RUNS, print_header
from repro.apps.model import bench_platform_config
from repro.core.analyzer import AnalyzerConfig
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.faas.sim import SimPlatform
from repro.workloads.arrival import poisson_schedule

THRESHOLDS = (0.005, 0.02, 0.05, 0.20)


def run_sweep(cycles):
    app = cycles.app("CVE")
    schedule = poisson_schedule(app.mix, rate_per_s=0.3, duration_s=3600, seed=7)
    rows = []
    for threshold in THRESHOLDS:
        tool = SlimStart(
            PipelineConfig(
                analyzer=AnalyzerConfig(rare_utilization_threshold=threshold),
                measure_cold_starts=COLD_STARTS // 2,
                measure_runs=2,
            )
        )
        platform = SimPlatform(config=bench_platform_config())
        result = tool.run_simulated_cycle(
            app.sim_config(), schedule, app.mix, platform=platform
        )
        rare_after = [
            r for r in result.after_records if r.entry.startswith("aux_")
        ]
        rare_exec = sum(r.exec_ms for r in rare_after) / max(1, len(rare_after))
        rows.append(
            (
                threshold,
                len(result.plan.all_deferred),
                result.speedups.init_speedup,
                rare_exec,
            )
        )
    return rows


def test_ablation_utilization_threshold(benchmark, cycles):
    rows = benchmark.pedantic(run_sweep, args=(cycles,), rounds=1, iterations=1)

    print_header("Ablation — utilization threshold sweep (CVE analyzer)")
    print(
        f"{'threshold':>9s} {'deferred':>9s} {'init speedup':>13s} "
        f"{'rare-path exec (ms)':>20s}"
    )
    for threshold, deferred, init_speedup, rare_exec in rows:
        print(
            f"{threshold:>9.3f} {deferred:>9d} {init_speedup:>12.2f}x "
            f"{rare_exec:>20.1f}"
        )

    deferred_counts = [row[1] for row in rows]
    init_speedups = [row[2] for row in rows]
    # More aggressive thresholds never defer less, never speed up less.
    assert deferred_counts == sorted(deferred_counts)
    assert all(
        later >= earlier - 0.02
        for earlier, later in zip(init_speedups, init_speedups[1:])
    )
    # The paper's 2 % default already captures the xmlschema win...
    default_row = rows[1]
    assert default_row[2] == pytest.approx(1.36, rel=0.15)
    # ...while the most aggressive setting trades rare-path latency for it.
    assert rows[-1][3] >= rows[0][3]
