"""Fig. 1 — ratio of library initialization time to end-to-end time.

Paper's finding: for the majority of the serverless applications, library
initialization contributes more than 70 % of cold end-to-end time.
"""

from benchmarks.conftest import print_header
from repro.faas.events import InvocationStats


def compute_ratios(cycles):
    ratios = {}
    for key in cycles.all_keys():
        result = cycles.result(key)
        cold = [record for record in result.before_records if record.cold]
        stats = InvocationStats.from_records(cold)
        ratios[key] = (stats.init.mean_ms, stats.e2e.mean_ms, stats.init_ratio)
    return ratios


def test_fig1_init_to_e2e_ratio(benchmark, cycles):
    ratios = benchmark.pedantic(
        compute_ratios, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Fig. 1 — library initialization : end-to-end time (cold starts)")
    print(f"{'App':10s} {'Init (ms)':>10s} {'E2E (ms)':>10s} {'Ratio':>7s}")
    above_70 = 0
    for key, (init_ms, e2e_ms, ratio) in ratios.items():
        marker = " *" if ratio > 0.70 else ""
        print(f"{key:10s} {init_ms:10.1f} {e2e_ms:10.1f} {ratio:6.1%}{marker}")
        if ratio > 0.70:
            above_70 += 1
    print(f"\napps with init ratio > 70 %: {above_70}/{len(ratios)}")

    # Paper shape: the majority of applications sit above 70 %.
    assert above_70 >= len(ratios) / 2
    # And every app passes a sanity band.
    assert all(0.0 < ratio <= 1.0 for _, _, ratio in ratios.values())
