"""Table IV — SLIMSTART report on Sentiment Analysis (R-SA).

The paper's case study: nltk contributes ~70 % of initialization latency
at ~5.3 % utilization; the sem/stem/parse/tag sub-modules add ~26 % of
init time while unused, and lazy-loading them yields 1.35x / 1.33x / 1.07x
(init / e2e / memory).
"""

import pytest

from benchmarks.conftest import print_header
from repro.core.report import render_report


def run_case_study(cycles):
    return cycles.app("R-SA"), cycles.result("R-SA")


def test_table4_sentiment_analysis_case_study(benchmark, cycles):
    app, result = benchmark.pedantic(
        run_case_study, args=(cycles,), rounds=1, iterations=1
    )

    print_header("Table IV — SLIMSTART report on Sentiment Analysis (R-SA)")
    print(render_report(result.report))
    s = result.speedups
    print()
    print(f"init speedup   : {s.init_speedup:.2f}x (paper 1.35x)")
    print(f"e2e speedup    : {s.e2e_speedup:.2f}x (paper 1.33x)")
    print(f"memory         : {s.memory_reduction:.2f}x (paper 1.07x)")

    # nltk dominates initialization.
    nltk_row = result.report.row("slnltk")
    assert nltk_row.init_share > 0.5
    assert nltk_row.classification == "active"
    # The Table IV sub-modules are flagged and deferred.
    deferred = result.plan.deferred_library_edges
    for cluster in ("slnltk.sem", "slnltk.stem", "slnltk.parse", "slnltk.tag"):
        assert cluster in deferred, cluster
    # The tokenizer pipeline stays eager.
    assert "slnltk.tokenize" not in deferred
    # Reported call paths exist for the flagged packages.
    assert any(key.startswith("slnltk.sem") for key in result.report.call_paths)
    # Speedups in the paper's band.
    assert s.init_speedup == pytest.approx(1.35, rel=0.12)
    assert s.e2e_speedup == pytest.approx(1.33, rel=0.12)
    assert s.memory_reduction >= 1.03
