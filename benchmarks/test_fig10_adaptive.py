"""Fig. 10 — adaptive profiling trends on the production trace.

Mean Δp_i(t) across applications and the fraction of applications whose
aggregate shift exceeds ε = 0.002, at 12-hour windows over ~300 hours.
Peaks must appear at the injected workload-shift hours (~144 h, ~228 h);
stable windows must stay below ε.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core.adaptive import DEFAULT_EPSILON
from repro.workloads.trace import TraceGenerator


def run_adaptive_study():
    trace = TraceGenerator(app_count=119, seed=2025).generate()
    mean_series = trace.mean_shift_series()
    exceed_series = trace.exceeding_fraction_series(DEFAULT_EPSILON)
    return trace, mean_series, exceed_series


def test_fig10_adaptive_profiling_trends(benchmark):
    trace, mean_series, exceed_series = benchmark.pedantic(
        run_adaptive_study, rounds=1, iterations=1
    )

    print_header(
        "Fig. 10 — mean Δp and % apps above ε = 0.002 (12-hour windows)"
    )
    print(f"{'hour':>6s} {'mean Δp':>10s} {'% apps > ε':>11s}")
    for index, (mean_shift, exceeding) in enumerate(
        zip(mean_series, exceed_series)
    ):
        # Transition index i compares window i to window i+1; the shift
        # injected at hour H lands on the transition *into* H's window.
        hour = (index + 1) * trace.window_hours
        marker = "  <-- shift" if exceeding > 0.3 else ""
        print(f"{hour:6.0f} {mean_shift:10.5f} {exceeding:11.1%}{marker}")

    shift_indices = {int(144 // 12) - 1, int(228 // 12) - 1}
    stable_mean = [
        v for i, v in enumerate(mean_series) if i not in shift_indices
    ]
    spike_mean = [v for i, v in enumerate(mean_series) if i in shift_indices]

    # Stable workloads sit below the threshold; shifts tower above it.
    assert max(stable_mean) < DEFAULT_EPSILON
    assert min(spike_mean) > 10 * DEFAULT_EPSILON
    # The exceeding-fraction series peaks exactly at the shift windows.
    peak_indices = sorted(
        range(len(exceed_series)), key=lambda i: -exceed_series[i]
    )[:2]
    assert set(peak_indices) == shift_indices
    # Profiling triggered rarely outside shifts: low baseline.
    baseline = [
        v for i, v in enumerate(exceed_series) if i not in shift_indices
    ]
    assert sum(baseline) / len(baseline) < 0.10
